package orclus

import (
	"testing"
)

func TestCountersPopulated(t *testing.T) {
	ds, _ := orientedData(t, 11)
	res, err := Run(ds, Config{K: 3, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Stats.Counters
	if c.DistanceEvals == 0 || c.CoordsVisited == 0 || c.PointsScanned == 0 {
		t.Fatalf("counters not threaded: %+v", c)
	}
	if c.DistanceEvalsFull != c.DistanceEvals {
		t.Fatalf("full split %d != total %d; the loop has no abandoning tier",
			c.DistanceEvalsFull, c.DistanceEvals)
	}
	if c.DistanceEvalsAbandoned != 0 {
		t.Fatalf("abandoned = %d, want 0", c.DistanceEvalsAbandoned)
	}
	// Every assignment pass scans the full dataset, so points_scanned
	// must be a multiple of the dataset size (≥ the loop's minimum of
	// three passes).
	if c.PointsScanned%int64(ds.Len()) != 0 || c.PointsScanned < 3*int64(ds.Len()) {
		t.Fatalf("points_scanned = %d for n = %d", c.PointsScanned, ds.Len())
	}
	if res.Stats.DatasetPoints != ds.Len() || res.Stats.DatasetDims != ds.Dims() {
		t.Fatalf("dataset shape %d×%d recorded as %d×%d",
			ds.Len(), ds.Dims(), res.Stats.DatasetPoints, res.Stats.DatasetDims)
	}
}

func TestCountersWorkerInvariant(t *testing.T) {
	// The assignment pass batches one atomic add per worker chunk, and
	// the per-point work is chunk-shape independent, so the totals must
	// be bit-identical for every goroutine budget.
	ds, _ := orientedData(t, 19)
	base, err := Run(ds, Config{K: 3, L: 2, Seed: 7, Workers: 1, HandleOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		res, err := Run(ds, Config{K: 3, L: 2, Seed: 7, Workers: w, HandleOutliers: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Counters != base.Stats.Counters {
			t.Fatalf("workers=%d: counters %+v != serial %+v", w, res.Stats.Counters, base.Stats.Counters)
		}
	}
}

func TestReport(t *testing.T) {
	ds, _ := orientedData(t, 17)
	res, err := Run(ds, Config{K: 3, L: 2, Seed: 5, Workers: 2, HandleOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Algorithm != "orclus" {
		t.Fatalf("algorithm %q", rep.Algorithm)
	}
	if rep.Dataset.Points != ds.Len() || rep.Dataset.Dims != ds.Dims() {
		t.Fatalf("dataset info %+v", rep.Dataset)
	}
	if rep.Seed != 5 {
		t.Fatalf("seed %d", rep.Seed)
	}
	cfg, ok := rep.Config.(ConfigReport)
	if !ok {
		t.Fatalf("config echo has type %T", rep.Config)
	}
	if cfg.K != 3 || cfg.L != 2 || cfg.K0Factor != 5 || cfg.Alpha != 0.5 || !cfg.HandleOutliers {
		t.Fatalf("config echo missing defaults: %+v", cfg)
	}
	if rep.Counters != res.Stats.Counters {
		t.Fatal("report counters differ from stats")
	}
	if rep.Objective != res.TotalEnergy {
		t.Fatal("objective mismatch")
	}
	if len(rep.Clusters) != len(res.Clusters) {
		t.Fatalf("%d cluster reports for %d clusters", len(rep.Clusters), len(res.Clusters))
	}
	for i, cr := range rep.Clusters {
		if cr.ID != i || cr.Medoid != -1 || cr.Size != len(res.Clusters[i].Members) {
			t.Fatalf("cluster report %d: %+v", i, cr)
		}
	}
	if rep.Outliers != res.NumOutliers() {
		t.Fatalf("outliers %d != %d", rep.Outliers, res.NumOutliers())
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "cluster" {
		t.Fatalf("phases %+v", rep.Phases)
	}
}
