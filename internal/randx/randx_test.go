package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestSeedResetsSpareNormal(t *testing.T) {
	r := New(3)
	r.NormFloat64() // may buffer a spare variate
	r.Seed(3)
	a := r.NormFloat64()
	r.Seed(3)
	b := r.NormFloat64()
	if a != b {
		t.Fatalf("spare normal survived re-seed: %v != %v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(9)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-style sanity test on Intn(10): each bucket should hold
	// roughly trials/10 observations.
	r := New(17)
	const trials = 100000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < trials/10-trials/100 || c > trials/10+trials/100 {
			t.Fatalf("bucket %d count %d deviates from expected %d", b, c, trials/10)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(0, 100)
		if v < 0 || v >= 100 {
			t.Fatalf("Uniform(0,100) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsPermutationQuick(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("normal variance = %v, want ~9", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 2, 7, 20, 50, 200} {
		r := New(37)
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			if v < 0 {
				t.Fatalf("Poisson(%v) variate negative: %v", lambda, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.2 {
			t.Fatalf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(0) did not panic")
		}
	}()
	New(1).Poisson(0)
}

func TestShuffleSwapsAllPositions(t *testing.T) {
	// Over many shuffles every position should at some point receive a
	// value different from its identity.
	const n = 16
	moved := make([]bool, n)
	r := New(41)
	for trial := 0; trial < 100; trial++ {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		for i, v := range p {
			if v != i {
				moved[i] = true
			}
		}
	}
	for i, m := range moved {
		if !m {
			t.Fatalf("position %d never moved across 100 shuffles", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(7)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(500)
	}
}
