// Package randx provides a deterministic, seedable pseudo-random number
// generator together with the non-uniform distributions required by the
// PROCLUS reproduction: uniform, normal, exponential and Poisson variates.
//
// The generator is a xoshiro256++ core seeded through SplitMix64. It is
// implemented locally (rather than delegating to math/rand) so that the
// byte-for-byte output of the synthetic data generator and of the
// randomized phases of PROCLUS is stable across Go releases: the suite's
// accuracy tests assert exact cluster recoveries on seeded inputs, and a
// silent change in the standard library's stream would invalidate them.
//
// Rand is NOT safe for concurrent use; callers that shard work across
// goroutines should derive independent streams with Split.
package randx

import "math"

// Rand is a deterministic pseudo-random number generator.
type Rand struct {
	s        [4]uint64
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if it had been constructed with
// New(seed).
func (r *Rand) Seed(seed uint64) {
	// SplitMix64 expansion of the seed into the 256-bit xoshiro state.
	// xoshiro requires a state that is not all zero; SplitMix64 never
	// produces four consecutive zeros.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = next(), next(), next(), next()
	r.hasSpare = false
	r.spare = 0
}

// Split returns a new generator whose stream is independent of r's
// continued output for all practical purposes. It advances r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation with rejection,
	// which avoids modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1), via
// inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with mean lambda. It panics if
// lambda is not positive. Small means use Knuth's product method; large
// means use the PTRS transformed-rejection method of Hörmann (1993),
// which is exact and O(1) in expectation.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 || math.IsNaN(lambda) {
		panic("randx: Poisson called with non-positive lambda")
	}
	if lambda < 30 {
		// Knuth: multiply uniforms until the product drops below
		// exp(-lambda).
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return r.poissonPTRS(lambda)
}

// poissonPTRS implements Hörmann's PTRS rejection sampler for
// lambda >= 10 (used here for lambda >= 30).
func (r *Rand) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLam := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLam-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

// logGamma returns ln(Γ(x)) using the Lanczos approximation. It is
// local to avoid importing math.Lgamma's sign return.
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}
