// Quickstart: generate a synthetic projected-clustering workload (the
// paper's §4.1 generator), run PROCLUS, and compare the recovered
// clusters and dimension sets against the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proclus"
)

func main() {
	// 10,000 points in 20 dimensions; 5 clusters, each correlated in
	// its own 7-dimensional subspace; 5% uniform noise.
	ds, gt, err := proclus.Generate(proclus.GeneratorConfig{
		N: 10000, Dims: 20, K: 5, FixedDims: 7,
		MinSizeFraction: 0.1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d points × %d dims\n\n", ds.Len(), ds.Dims())

	// PROCLUS needs the cluster count k and the average cluster
	// dimensionality l.
	res, err := proclus.Run(ds, proclus.Config{K: 5, L: 7, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ground truth:")
	for i, dims := range gt.Dimensions {
		fmt.Printf("  cluster %c: %5d points, dims %v\n", 'A'+i, gt.Sizes[i], dims)
	}
	fmt.Println("\nrecovered:")
	for i, cl := range res.Clusters {
		fmt.Printf("  cluster %d: %5d points, dims %v\n", i+1, len(cl.Members), cl.Dimensions)
	}
	fmt.Printf("  outliers:  %5d points\n", res.NumOutliers())

	// Score the recovery: the confusion matrix pairs output clusters
	// with the input clusters they captured.
	cm, err := proclus.NewConfusion(ds.Labels(), res.Assignments, len(res.Clusters), len(gt.Sizes))
	if err != nil {
		log.Fatal(err)
	}
	match := cm.Match()
	exact := 0
	for i, cl := range res.Clusters {
		if match[i] >= 0 && proclus.MatchDimensions(cl.Dimensions, gt.Dimensions[match[i]]).Exact {
			exact++
		}
	}
	fmt.Printf("\npurity %.3f, exact dimension recoveries %d/%d\n",
		cm.Purity(), exact, len(res.Clusters))
}
