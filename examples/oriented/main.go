// Generalized projected clustering: the PROCLUS paper's conclusions
// name clusters "not parallel to the original axes" as future work.
// This example generates clusters that correlate along arbitrary
// directions and compares axis-parallel PROCLUS against the generalized
// ORCLUS extension (the authors' SIGMOD 2000 follow-up, implemented in
// this repository).
//
//	go run ./examples/oriented
package main

import (
	"fmt"
	"log"

	"proclus"
)

func main() {
	// Three clusters, each tight along 2 arbitrary (rotated) directions
	// of a 10-dimensional space and spread along the remaining 8.
	ds, _, err := proclus.GenerateOriented(proclus.OrientedConfig{
		N: 4000, Dims: 10, K: 3, L: 2, OutlierFraction: -1, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d points, 3 clusters tight along arbitrary directions\n\n", ds.Len())

	// Axis-parallel PROCLUS: rotated correlations project onto many
	// axes, so the per-axis signal is weak.
	pr, err := proclus.Run(ds, proclus.Config{K: 3, L: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ariP, err := proclus.AdjustedRandIndex(ds.Labels(), pr.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PROCLUS (axis-parallel subspaces): ARI %.3f\n", ariP)

	// ORCLUS: per-cluster orthonormal bases from covariance
	// eigenvectors recover the rotated structure.
	oc, err := proclus.RunORCLUS(ds, proclus.ORCLUSConfig{K: 3, L: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ariO, err := proclus.AdjustedRandIndex(ds.Labels(), oc.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORCLUS  (arbitrary subspaces):     ARI %.3f\n\n", ariO)

	for i, cl := range oc.Clusters {
		fmt.Printf("ORCLUS cluster %d: %d points, projected energy %.3f\n",
			i+1, len(cl.Members), cl.Energy)
	}
}
