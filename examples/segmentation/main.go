// Customer segmentation: the collaborative-filtering scenario §1.2 of
// the PROCLUS paper gives as motivation for the Manhattan segmental
// distance. Customers rate many product categories; each market segment
// has strong, consistent preferences in a few categories and noise
// everywhere else, so segments live in segment-specific subspaces.
//
// PROCLUS both partitions the customers and names the categories that
// define each segment — precisely the output target marketing needs.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"proclus"
	"proclus/internal/randx"
)

// categories of a small storefront; one dimension per category, values
// are preference scores in [0, 100].
var categories = []string{
	"electronics", "books", "gardening", "cookware", "fashion",
	"sports", "toys", "music", "travel", "pets",
	"office", "outdoors", "beauty", "automotive", "crafts",
}

// segment is a ground-truth market segment: strong preferences in a few
// categories, random elsewhere.
type segment struct {
	name  string
	likes map[int]float64 // category index -> preferred score
	size  int
}

func main() {
	r := randx.New(2024)
	segments := []segment{
		{"tech enthusiasts", map[int]float64{0: 90, 7: 75, 10: 70}, 400},
		{"home & garden", map[int]float64{2: 85, 3: 80, 9: 65}, 350},
		{"active outdoor", map[int]float64{5: 88, 11: 92, 8: 70}, 300},
		{"young families", map[int]float64{6: 85, 4: 60, 12: 55}, 250},
	}

	ds := proclus.NewDataset(len(categories))
	for si, s := range segments {
		for i := 0; i < s.size; i++ {
			p := make([]float64, len(categories))
			for j := range p {
				if want, ok := s.likes[j]; ok {
					p[j] = want + r.Normal(0, 4)
				} else {
					p[j] = r.Uniform(0, 100)
				}
			}
			ds.AppendLabeled(p, si)
		}
	}
	// A handful of erratic customers who fit no segment.
	for i := 0; i < 60; i++ {
		p := make([]float64, len(categories))
		for j := range p {
			p[j] = r.Uniform(0, 100)
		}
		ds.AppendLabeled(p, proclus.Outlier)
	}

	res, err := proclus.Run(ds, proclus.Config{K: 4, L: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("segmented %d customers into %d groups (+%d unsegmented)\n\n",
		ds.Len(), len(res.Clusters), res.NumOutliers())
	for i, cl := range res.Clusters {
		fmt.Printf("segment %d — %d customers, defining categories:\n", i+1, len(cl.Members))
		for _, d := range cl.Dimensions {
			fmt.Printf("  %-12s avg score %5.1f\n", categories[d], cl.Centroid[d])
		}
		// Name the ground-truth segment this group captured.
		counts := map[int]int{}
		for _, p := range cl.Members {
			counts[ds.Label(p)]++
		}
		best, bestN := -1, 0
		for l, n := range counts {
			if l >= 0 && n > bestN {
				best, bestN = l, n
			}
		}
		if best >= 0 {
			fmt.Printf("  → matches ground-truth %q (%d/%d customers)\n\n",
				segments[best].name, bestN, len(cl.Members))
		}
	}
}
