// Algorithm comparison on the paper's Figure-1 scenario, embedded in a
// realistic high-dimensional space: two clusters that exist in different
// 2-dimensional projections (x–y and x–z) of a record with many other
// uncorrelated attributes. Full-dimensional k-medoids degrades because
// the noise dimensions dominate every distance; CLIQUE finds the dense
// regions but reports overlapping projections rather than a partition;
// PROCLUS partitions the points and names each cluster's subspace.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"proclus"
	"proclus/internal/randx"
)

const (
	dims             = 12 // x, y, z plus 9 uncorrelated attributes
	perGroup         = 500
	dimX, dimY, dimZ = 0, 1, 2
)

func main() {
	r := randx.New(99)
	ds := proclus.NewDataset(dims)
	add := func(label int, fill func(p []float64)) {
		p := make([]float64, dims)
		for j := range p {
			p[j] = r.Uniform(0, 100)
		}
		fill(p)
		ds.AppendLabeled(p, label)
	}
	// Both clusters share the x anchor, so no single dimension separates
	// them; only the projected structure does.
	for i := 0; i < perGroup; i++ {
		add(0, func(p []float64) { // tight in x–y
			p[dimX] = 50 + r.Normal(0, 2)
			p[dimY] = 30 + r.Normal(0, 2)
		})
		add(1, func(p []float64) { // tight in x–z
			p[dimX] = 50 + r.Normal(0, 2)
			p[dimZ] = 70 + r.Normal(0, 2)
		})
	}

	fmt.Printf("two projected clusters (x–y and x–z) among %d mostly-noise dimensions\n", dims)

	// Full-dimensional k-medoids (CLARANS style): noise dimensions
	// dominate the metric.
	km, err := proclus.RunKMedoids(ds, proclus.KMedoidsConfig{K: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-dimensional k-medoids: agreement with truth %.1f%%\n",
		100*agreement(ds, km.Assignments))

	// CLIQUE: dense regions per subspace, overlapping output.
	cq, err := proclus.RunCLIQUE(ds, proclus.CliqueConfig{Xi: 10, Tau: 0.02, ReportMaximal: true})
	if err != nil {
		log.Fatal(err)
	}
	members := proclus.CliqueMembership(ds, cq)
	overlap, err := proclus.AverageOverlap(members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCLIQUE: %d overlapping clusters, average overlap %.2f (no partition)\n",
		len(cq.Clusters), overlap)
	shown := 0
	for _, cl := range cq.Clusters {
		if containsBoth(cl.Dims) && shown < 6 {
			fmt.Printf("  dense region in subspace %v covering %d points\n", axes(cl.Dims), cl.Size)
			shown++
		}
	}

	// PROCLUS: a partition plus per-cluster dimensions.
	pr, err := proclus.Run(ds, proclus.Config{K: 2, L: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPROCLUS: agreement with truth %.1f%%\n", 100*agreement(ds, pr.Assignments))
	for i, cl := range pr.Clusters {
		fmt.Printf("  cluster %d: %d points in subspace %v\n",
			i+1, len(cl.Members), axes(cl.Dimensions))
	}
}

// containsBoth reports whether the subspace includes x together with y
// or z — the interesting projections of the story.
func containsBoth(ds []int) bool {
	hasX, hasYZ := false, false
	for _, d := range ds {
		switch d {
		case dimX:
			hasX = true
		case dimY, dimZ:
			hasYZ = true
		}
	}
	return hasX && hasYZ
}

// agreement returns the fraction of points whose assignment matches the
// ground truth up to label permutation (2-cluster case).
func agreement(ds *proclus.Dataset, assign []int) float64 {
	same := 0
	n := 0
	for i := 0; i < ds.Len(); i++ {
		if assign[i] < 0 {
			continue
		}
		n++
		if assign[i] == ds.Label(i) {
			same++
		}
	}
	if n == 0 {
		return 0
	}
	f := float64(same) / float64(n)
	if f < 0.5 {
		f = 1 - f
	}
	return f
}

func axes(dims []int) []string {
	names := map[int]string{dimX: "x", dimY: "y", dimZ: "z"}
	out := make([]string, len(dims))
	for i, d := range dims {
		if n, ok := names[d]; ok {
			out[i] = n
		} else {
			out[i] = fmt.Sprintf("attr%d", d)
		}
	}
	return out
}
