// Anomaly detection in sensor telemetry: machines operating in distinct
// regimes produce readings correlated on regime-specific sensor subsets;
// faulty readings fit no regime. PROCLUS's refinement phase flags points
// outside every medoid's sphere of influence (paper §2.3), giving an
// outlier set alongside the regime partition — the paper's "trend
// analysis" use case.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	"proclus"
	"proclus/internal/randx"
)

const sensors = 12

// regime describes normal operation: a handful of sensors move
// together; the rest fluctuate freely.
type regime struct {
	name    string
	anchors map[int]float64
}

func main() {
	r := randx.New(7)
	regimes := []regime{
		{"idle", map[int]float64{0: 20, 1: 15, 2: 22, 3: 18}},
		{"full load", map[int]float64{4: 80, 5: 85, 6: 78, 7: 82}},
		{"cooldown", map[int]float64{8: 45, 9: 40, 10: 50, 11: 42}},
	}

	ds := proclus.NewDataset(sensors)
	for ri, reg := range regimes {
		for i := 0; i < 600; i++ {
			p := make([]float64, sensors)
			for j := range p {
				if a, ok := reg.anchors[j]; ok {
					p[j] = a + r.Normal(0, 1.5)
				} else {
					p[j] = r.Uniform(0, 100)
				}
			}
			ds.AppendLabeled(p, ri)
		}
	}
	// Faults: readings far outside every regime's operating envelope.
	const faults = 25
	for i := 0; i < faults; i++ {
		p := make([]float64, sensors)
		for j := range p {
			p[j] = r.Uniform(150, 250)
		}
		ds.AppendLabeled(p, proclus.Outlier)
	}

	res, err := proclus.Run(ds, proclus.Config{K: 3, L: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d sensor snapshots into %d regimes\n\n", ds.Len(), len(res.Clusters))
	for i, cl := range res.Clusters {
		fmt.Printf("regime %d — %d snapshots, correlated sensors %v\n",
			i+1, len(cl.Members), cl.Dimensions)
	}

	caught, falseAlarms := 0, 0
	for i, a := range res.Assignments {
		if a != proclus.OutlierID {
			continue
		}
		if ds.Label(i) == proclus.Outlier {
			caught++
		} else {
			falseAlarms++
		}
	}
	fmt.Printf("\nanomalies flagged: %d of %d planted faults (%d false alarms among %d normal snapshots)\n",
		caught, faults, falseAlarms, ds.Len()-faults)
}
