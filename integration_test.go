package proclus_test

// Integration tests exercising full pipelines across modules: generator
// → file round trip → streaming stats → clustering → evaluation →
// baselines, the way a downstream user chains the public API.

import (
	"path/filepath"
	"testing"

	"proclus"
	"proclus/internal/dataset"
)

func TestPipelineGenerateSaveLoadClusterEvaluate(t *testing.T) {
	// 1. Generate a Case-1-style workload.
	ds, gt, err := proclus.Generate(proclus.GeneratorConfig{
		N: 6000, Dims: 16, K: 4, FixedDims: 5, MinSizeFraction: 0.12, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Round-trip through the binary format.
	path := filepath.Join(t.TempDir(), "pipeline.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := proclus.LoadFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() || loaded.Dims() != ds.Dims() {
		t.Fatal("round trip changed shape")
	}

	// 3. Streaming statistics must agree with in-memory bounds.
	n, stats, err := dataset.ScanStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != ds.Len() {
		t.Fatalf("stream saw %d points", n)
	}
	min, max := ds.Bounds()
	for j := range stats {
		if stats[j].Min != min[j] || stats[j].Max != max[j] {
			t.Fatalf("dim %d: streamed bounds differ", j)
		}
	}

	// 4. Cluster the loaded copy.
	res, err := proclus.Run(loaded, proclus.Config{K: 4, L: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// 5. Evaluate against the generator's truth.
	cm, err := proclus.NewConfusion(loaded.Labels(), res.Assignments, len(res.Clusters), len(gt.Sizes))
	if err != nil {
		t.Fatal(err)
	}
	if cm.Purity() < 0.9 {
		t.Fatalf("purity %.3f", cm.Purity())
	}
	ari, err := proclus.AdjustedRandIndex(loaded.Labels(), res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.7 {
		t.Fatalf("ARI %.3f", ari)
	}
	exact := 0
	match := cm.Match()
	for i, cl := range res.Clusters {
		if match[i] >= 0 && proclus.MatchDimensions(cl.Dimensions, gt.Dimensions[match[i]]).Exact {
			exact++
		}
	}
	if exact < 3 {
		t.Fatalf("%d/4 exact dimension recoveries", exact)
	}
}

func TestPipelineThreeAlgorithmsOneWorkload(t *testing.T) {
	// The compare-example scenario as a test: PROCLUS must beat the
	// full-dimensional baseline on projected structure, and CLIQUE must
	// report overlapping (non-partition) output on the same data.
	ds, _, err := proclus.Generate(proclus.GeneratorConfig{
		N: 4000, Dims: 14, K: 3, FixedDims: 3, OutlierFraction: -1,
		MinSizeFraction: 0.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}

	pr, err := proclus.Run(ds, proclus.Config{K: 3, L: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ariProclus, err := proclus.AdjustedRandIndex(ds.Labels(), pr.Assignments)
	if err != nil {
		t.Fatal(err)
	}

	km, err := proclus.RunKMedoids(ds, proclus.KMedoidsConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ariKM, err := proclus.AdjustedRandIndex(ds.Labels(), km.Assignments)
	if err != nil {
		t.Fatal(err)
	}

	if ariProclus <= ariKM {
		t.Fatalf("PROCLUS (%.3f) did not beat full-dimensional k-medoids (%.3f) on 3-of-14-dim clusters",
			ariProclus, ariKM)
	}
	if ariProclus < 0.8 {
		t.Fatalf("PROCLUS ARI %.3f too low", ariProclus)
	}

	cq, err := proclus.RunCLIQUE(ds, proclus.CliqueConfig{Xi: 10, Tau: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	members := proclus.CliqueMembership(ds, cq)
	ov, err := proclus.AverageOverlap(members)
	if err != nil {
		t.Fatal(err)
	}
	if ov <= 1 {
		t.Fatalf("CLIQUE raw output overlap %.2f, expected > 1 (projections reported)", ov)
	}
	// Regions must describe every reported cluster exactly once per unit.
	for _, cl := range cq.Clusters {
		regions := proclus.DescribeCliqueCluster(cl)
		if len(cl.Units) > 0 && len(regions) == 0 {
			t.Fatal("cluster with units but no description")
		}
	}
}

func TestPipelineOrientedOrclusBeatsProclus(t *testing.T) {
	ds, _, err := proclus.GenerateOriented(proclus.OrientedConfig{
		N: 3000, Dims: 10, K: 3, L: 2, OutlierFraction: -1, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := proclus.RunORCLUS(ds, proclus.ORCLUSConfig{K: 3, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ariO, err := proclus.AdjustedRandIndex(ds.Labels(), oc.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := proclus.Run(ds, proclus.Config{K: 3, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ariP, err := proclus.AdjustedRandIndex(ds.Labels(), pr.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if ariO < 0.85 {
		t.Fatalf("ORCLUS ARI %.3f on oriented clusters", ariO)
	}
	if ariO <= ariP {
		t.Fatalf("ORCLUS (%.3f) did not beat axis-parallel PROCLUS (%.3f) on oriented clusters",
			ariO, ariP)
	}
}

func TestPipelineCSVInterop(t *testing.T) {
	// Generate → CSV → reload with labels → cluster → same results as
	// clustering the original (CSV round trip preserves float64 via
	// strconv 'g' with full precision).
	ds, _, err := proclus.Generate(proclus.GeneratorConfig{
		N: 1200, Dims: 6, K: 2, FixedDims: 2, MinSizeFraction: 0.2, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "interop.csv")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := proclus.LoadFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := proclus.Run(ds, proclus.Config{K: 2, L: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := proclus.Run(loaded, proclus.Config{K: 2, L: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Assignments {
		if resA.Assignments[i] != resB.Assignments[i] {
			t.Fatalf("CSV round trip changed clustering at point %d", i)
		}
	}
}
