// Package proclus is the public API of this repository: a Go
// implementation of PROCLUS, the projected clustering algorithm of
// Aggarwal, Procopiuc, Wolf, Yu and Park ("Fast Algorithms for Projected
// Clustering", SIGMOD 1999), together with the CLIQUE baseline it was
// evaluated against, the paper's synthetic workload generator, a
// full-dimensional k-medoids reference, and the paper's evaluation
// metrics.
//
// # Quick start
//
//	ds, _, err := proclus.Generate(proclus.GeneratorConfig{
//		N: 10000, Dims: 20, K: 5, AvgDims: 7, Seed: 1,
//	})
//	if err != nil { ... }
//	res, err := proclus.Run(ds, proclus.Config{K: 5, L: 7, Seed: 1})
//	if err != nil { ... }
//	for i, c := range res.Clusters {
//		fmt.Printf("cluster %d: %d points, dims %v\n", i, len(c.Members), c.Dimensions)
//	}
//
// The heavy lifting lives in the internal packages; this package
// re-exports the stable surface so downstream users depend on one import
// path.
package proclus

import (
	"context"
	"io"

	"proclus/internal/clique"
	"proclus/internal/core"
	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/medoid"
	"proclus/internal/obs"
	"proclus/internal/obs/archive"
	"proclus/internal/obs/metrics"
	"proclus/internal/obs/series"
	"proclus/internal/orclus"
	"proclus/internal/registry"
	"proclus/internal/synth"
)

// Dataset is a set of points in d-dimensional space with optional
// ground-truth labels. See NewDataset, FromRows, ReadCSV and Generate.
type Dataset = dataset.Dataset

// Outlier is the ground-truth label of noise points in labeled datasets.
const Outlier = dataset.Outlier

// Config holds the PROCLUS parameters; K (cluster count) and L (average
// dimensions per cluster) are required.
type Config = core.Config

// Result is the output of a PROCLUS run: a (k+1)-way partition plus
// per-cluster dimension sets.
type Result = core.Result

// Cluster is one projected cluster in a Result.
type Cluster = core.Cluster

// OutlierID marks points assigned to no cluster in Result.Assignments.
const OutlierID = core.OutlierID

// Stats records a run's phase timings, per-restart breakdown, hot-path
// counters and hill-climbing trace.
type Stats = core.Stats

// RestartStats describes one hill-climb restart in Stats.Restarts.
type RestartStats = core.RestartStats

// Observer receives structured run events when attached via
// Config.Observer (or CliqueConfig.Observer). Nil disables emission.
type Observer = obs.Observer

// Event is one structured observation: a run/phase/restart boundary, a
// hill-climbing iteration, a medoid replacement, or a CLIQUE lattice
// level.
type Event = obs.Event

// EventType discriminates Events.
type EventType = obs.EventType

// JSONTracer is an Observer writing one JSON object per event.
type JSONTracer = obs.JSONTracer

// ProgressLogger is an Observer printing human-readable progress lines.
type ProgressLogger = obs.ProgressLogger

// RunReport is the machine-readable summary of one run: config, seed,
// per-phase and per-restart timings, counters, objective trace and
// final clusters. Build one with Result.Report (or
// CliqueResult.Report).
type RunReport = obs.RunReport

// CounterSnapshot holds a run's hot-path counters (distance
// evaluations, points scanned, dense-unit probes).
type CounterSnapshot = obs.Snapshot

// ChromeTracer is an Observer serializing the event stream as a Chrome
// trace_event file, loadable in chrome://tracing or Perfetto.
type ChromeTracer = obs.ChromeTracer

// MetricsRegistry collects metric series — log-bucketed latency
// histograms, gauges, counters and throughput rates — when attached via
// Config.Metrics (or CliqueConfig.Metrics). Nil disables recording.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a deterministic (name-then-label sorted) copy of a
// registry's series, as embedded in RunReport.Metrics.
type MetricsSnapshot = metrics.Snapshot

// NewJSONTracer returns an Observer writing one JSON line per event to
// w. Safe for concurrent use; check Err after the run.
func NewJSONTracer(w io.Writer) *JSONTracer { return obs.NewJSONTracer(w) }

// NewProgressLogger returns an Observer printing human-readable
// progress lines to w (typically os.Stderr).
func NewProgressLogger(w io.Writer) *ProgressLogger { return obs.NewProgressLogger(w) }

// MultiObserver fans events out to several observers; nils are
// dropped, and zero observers yield nil (emission disabled).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// NewChromeTracer returns an Observer buffering the event stream as
// Chrome trace_event spans; Close serializes the document to w.
func NewChromeTracer(w io.Writer) *ChromeTracer { return obs.NewChromeTracer(w) }

// NewMetricsRegistry returns an empty metric registry to attach via
// Config.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsLabel is one name=value dimension on a metric or series.
// Build one with SeriesLabel; pass them to MetricsRegistry.Scope to
// carve an isolated, labeled child registry out of a shared parent
// (one parent per process, one scope per run or tenant).
type MetricsLabel = metrics.Label

// SeriesStore records convergence time series — per-iteration objective
// trajectories and per-block latencies — when attached via
// Config.Series (or CliqueConfig.Series). Nil disables recording;
// attaching a store does not change the clustering result by a single
// bit.
type SeriesStore = series.Store

// SeriesStoreSnapshot is a deterministic (name-then-label sorted) copy
// of a store's series, as embedded in Stats.Series and
// RunReport.Series.
type SeriesStoreSnapshot = series.StoreSnapshot

// SeriesSnapshot is one series inside a SeriesStoreSnapshot: its ring
// of retained points plus the total ever appended.
type SeriesSnapshot = series.SeriesSnapshot

// SeriesPoint is one (x, value) sample of a series.
type SeriesPoint = series.Point

// NewSeriesStore returns an empty series store retaining up to
// capacity points per series (0 = default).
func NewSeriesStore(capacity int) *SeriesStore { return series.NewStore(capacity) }

// Series names the PROCLUS engines record into an attached
// SeriesStore. Per-iteration series carry a restart="N" label and use
// the iteration number as X; per-block series carry a pass="name"
// label and use the 1-based block index as X.
const (
	SeriesIterObjective     = core.SeriesIterObjective
	SeriesIterBest          = core.SeriesIterBest
	SeriesIterAccepted      = core.SeriesIterAccepted
	SeriesIterBadMedoids    = core.SeriesIterBadMedoids
	SeriesIterCacheHitRate  = core.SeriesIterCacheHitRate
	SeriesBlockSeconds      = core.SeriesBlockSeconds
	SeriesBlockPointsPerSec = core.SeriesBlockPointsPerSec
)

// Series names the CLIQUE search records: per-lattice-level and (for
// streamed runs) per-block telemetry.
const (
	CliqueSeriesLevelSeconds    = clique.SeriesLevelSeconds
	CliqueSeriesLevelCandidates = clique.SeriesLevelCandidates
	CliqueSeriesLevelDense      = clique.SeriesLevelDense
	CliqueSeriesBlockSeconds    = clique.SeriesBlockSeconds
)

// SeriesLabel builds one name=value label for SeriesStore.Series and
// SeriesStoreSnapshot.Find (e.g. SeriesLabel("restart", "1")).
func SeriesLabel(name, value string) metrics.Label { return metrics.L(name, value) }

// Span is one node of a reconstructed run timeline: the run, a phase,
// a restart, or a leaf iteration/level/pass/block.
type Span = obs.Span

// SpanBuilder is an Observer reconstructing the event stream into a
// hierarchical span tree with critical-path extraction; it can also
// replay a recorded trace via Add.
type SpanBuilder = obs.SpanBuilder

// NewSpanBuilder returns an empty span builder to attach via
// Config.Observer (or feed recorded events through Add).
func NewSpanBuilder() *SpanBuilder { return obs.NewSpanBuilder() }

// Watchdog is an Observer that detects stalled runs — a configurable
// non-improving iteration streak or a wall-clock silence deadline —
// emits a structured stall event, and optionally cancels the run.
type Watchdog = obs.Watchdog

// WatchdogOptions configures a Watchdog: the non-improve streak
// threshold, the progress deadline, the cancel hook, and the next
// Observer in the chain.
type WatchdogOptions = obs.WatchdogOptions

// NewWatchdog returns a watchdog to attach via Config.Observer; wire
// its Cancel option to a context.CancelFunc passed to RunContext or
// RunStream to abort stalled runs. Call Stop when done.
func NewWatchdog(opts WatchdogOptions) *Watchdog { return obs.NewWatchdog(opts) }

// StartProfiles begins a CPU profile (cpuPath non-empty) and returns a
// stop function that finishes it and writes a heap profile (memPath
// non-empty). Either path may be empty.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath)
}

// RunArchive is the append-only on-disk run store: each saved run (or
// benchmark capture) becomes a directory holding a manifest plus the
// run's report, metrics and series snapshots. Loading is
// corruption-tolerant and retention by count garbage-collects the
// oldest entries. Inspect an archive with `runlens ls/diff/trend`.
type RunArchive = archive.Store

// RunArchiveOptions configures OpenRunArchive (retention by count).
type RunArchiveOptions = archive.Options

// ArchiveManifest is the always-present summary of one archived entry:
// provenance (run ID, git revision, seed, config echo), deterministic
// work counters, per-phase seconds and quality indices.
type ArchiveManifest = archive.Manifest

// ArchiveRecord is one loaded archive entry: its manifest plus
// whichever sibling artifacts (report, metrics, series, bench capture)
// were recorded and still parse.
type ArchiveRecord = archive.Record

// ArchivedRun bundles one completed run's artifacts for
// RunArchive.SaveRun; build one from a report with ArchiveFromReport.
type ArchivedRun = archive.Run

// OpenRunArchive opens (creating if needed) the run archive rooted at
// dir.
func OpenRunArchive(dir string, opts RunArchiveOptions) (*RunArchive, error) {
	return archive.Open(dir, opts)
}

// ArchiveFromReport builds an ArchivedRun from a finished run report:
// algorithm, seed, config echo, phases, counters, metrics and series
// all come from the report itself.
func ArchiveFromReport(rep *RunReport) ArchivedRun { return archive.FromReport(rep) }

// InitMethod selects the candidate-medoid initialization strategy.
type InitMethod = core.InitMethod

// Initialization strategies: the paper's greedy farthest-first over a
// random sample, or uniform random selection (ablation baseline).
const (
	InitGreedy = core.InitGreedy
	InitRandom = core.InitRandom
)

// AssignMetric selects the point-to-medoid distance.
type AssignMetric = core.AssignMetric

// Assignment metrics: the paper's Manhattan segmental distance, or
// unnormalized Manhattan over each medoid's dimensions (ablation
// baseline).
const (
	MetricSegmental = core.MetricSegmental
	MetricManhattan = core.MetricManhattan
)

// EvalMode selects the hill-climb evaluation engine.
type EvalMode = core.EvalMode

// Evaluation engines: the incremental distance-cache engine (default),
// or naive from-scratch re-evaluation (escape hatch and equivalence
// baseline). Both produce bit-identical Results.
const (
	EvalIncremental = core.EvalIncremental
	EvalNaive       = core.EvalNaive
)

// SketchConfig enables the random-projection sketch tier via
// Config.Sketch: Dims selects the sketch dimensionality d' (0 disables
// the tier) and Mode selects pruning (bit-identical, default) or Approx
// (faster, approximate). Incompatible with RunStream.
type SketchConfig = core.SketchConfig

// SketchMode selects how the sketch tier is used.
type SketchMode = core.SketchMode

// Sketch modes: pruning with exact re-check (results bit-identical to
// an unsketched run), or pure sketch-space distances (approximate,
// gated by the ARI/NMI quality suite).
const (
	SketchPrune  = core.SketchPrune
	SketchApprox = core.SketchApprox
)

// ParseSketchMode resolves a sketch mode from its conventional name
// ("prune" or "approx"; empty = prune).
func ParseSketchMode(name string) (SketchMode, error) { return core.ParseSketchMode(name) }

// KernelMode selects the exact-distance kernel tier via Config.Kernel.
type KernelMode = core.KernelMode

// Kernel tiers: the early-abandoning kernels (packed medoid rows,
// coordinate-level pruning, best-first medoid ordering; default), or
// the naive full-evaluation loops (escape hatch and equivalence
// baseline). Both produce bit-identical Results.
const (
	KernelPruned = core.KernelPruned
	KernelNaive  = core.KernelNaive
)

// ParseKernelMode resolves a kernel tier from its conventional name
// ("pruned" or "naive"; empty = pruned).
func ParseKernelMode(name string) (KernelMode, error) { return core.ParseKernelMode(name) }

// Run executes PROCLUS on ds.
func Run(ds *Dataset, cfg Config) (*Result, error) { return core.Run(ds, cfg) }

// RunContext executes PROCLUS on ds, aborting between hill-climbing
// trials when ctx is cancelled.
func RunContext(ctx context.Context, ds *Dataset, cfg Config) (*Result, error) {
	return core.RunContext(ctx, ds, cfg)
}

// PointSource yields a dataset as a sequence of bounded blocks for the
// out-of-core entry points. See NewMemorySource and OpenFileSource.
type PointSource = core.PointSource

// MemorySource adapts an in-memory Dataset to the PointSource
// interface (zero-copy blocks; mostly for testing and equivalence).
type MemorySource = dataset.MemorySource

// FileSource is a disk-resident PointSource over the binary dataset
// format; every Blocks pass re-scans the file in bounded memory.
type FileSource = dataset.FileSource

// NewMemorySource wraps ds as a PointSource with the given block
// granularity (0 = default).
func NewMemorySource(ds *Dataset, blockPoints int) *MemorySource {
	return dataset.NewMemorySource(ds, blockPoints)
}

// OpenFileSource opens a binary dataset file as a PointSource with the
// given block granularity (0 = default).
func OpenFileSource(path string, blockPoints int) (*FileSource, error) {
	return dataset.OpenFileSource(path, blockPoints)
}

// RunStream executes PROCLUS over a PointSource in bounded memory:
// every full-data pass streams blocks, while the hill-climbing trials
// run on the in-memory greedy sample as the paper prescribes. Results
// are bit-identical for any block size, worker count, and source kind.
func RunStream(ctx context.Context, src PointSource, cfg Config) (*Result, error) {
	return core.RunStream(ctx, src, cfg)
}

// RunCLIQUEStream executes CLIQUE over a PointSource in bounded
// memory; results are bit-identical to RunCLIQUE on the same data.
func RunCLIQUEStream(ctx context.Context, src PointSource, cfg CliqueConfig) (*CliqueResult, error) {
	return clique.RunStream(ctx, src, cfg)
}

// LSweepPoint is one point of an l-parameter sweep.
type LSweepPoint = core.LSweepPoint

// SweepL runs PROCLUS for every l in [minL, maxL], the loop §4.3 of the
// paper recommends when the average cluster dimensionality is unknown.
func SweepL(ds *Dataset, cfg Config, minL, maxL int) ([]LSweepPoint, error) {
	return core.SweepL(ds, cfg, minL, maxL)
}

// SuggestL picks an l from a sweep by elbow detection on the objective
// curve.
func SuggestL(points []LSweepPoint) (int, error) { return core.SuggestL(points) }

// KSweepPoint is one point of a k-parameter sweep.
type KSweepPoint = core.KSweepPoint

// SweepK runs PROCLUS for every k in [minK, maxK] with otherwise fixed
// configuration.
func SweepK(ds *Dataset, cfg Config, minK, maxK int) ([]KSweepPoint, error) {
	return core.SweepK(ds, cfg, minK, maxK)
}

// SuggestK picks a k from a sweep by knee detection on the objective
// curve.
func SuggestK(points []KSweepPoint) (int, error) { return core.SuggestK(points) }

// CliqueConfig holds the CLIQUE parameters (grid resolution Xi and
// density threshold Tau).
type CliqueConfig = clique.Config

// CliqueResult is the output of a CLIQUE run: dense-unit clusters per
// subspace, which may overlap.
type CliqueResult = clique.Result

// RunCLIQUE executes the CLIQUE baseline on ds.
func RunCLIQUE(ds *Dataset, cfg CliqueConfig) (*CliqueResult, error) { return clique.Run(ds, cfg) }

// CliqueMembership returns each CLIQUE cluster's covered point indices.
func CliqueMembership(ds *Dataset, res *CliqueResult) [][]int { return clique.Membership(ds, res) }

// Region is an axis-parallel hyper-rectangle of grid units used in
// CLIQUE cluster descriptions.
type Region = clique.Region

// DescribeCliqueCluster returns a minimal cover of a CLIQUE cluster's
// dense units by maximal axis-parallel regions (CLIQUE's description
// step).
func DescribeCliqueCluster(cl clique.Cluster) []Region { return clique.Describe(cl) }

// CliquePartitionView flattens a CLIQUE result into a disjoint
// assignment (one cluster per covered point, -1 for uncovered),
// preferring higher-dimensional then larger clusters.
func CliquePartitionView(ds *Dataset, res *CliqueResult) []int {
	return clique.PartitionView(ds, res)
}

// GeneratorConfig describes a synthetic dataset in the sense of §4.1 of
// the paper.
type GeneratorConfig = synth.Config

// GroundTruth records the clusters a generated dataset actually
// contains.
type GroundTruth = synth.GroundTruth

// Generate produces a labeled synthetic dataset and its ground truth.
func Generate(cfg GeneratorConfig) (*Dataset, *GroundTruth, error) { return synth.Generate(cfg) }

// ORCLUSConfig parameterizes generalized (arbitrarily oriented)
// projected clustering — the future-work direction of the paper's
// conclusions, published by two of its authors as ORCLUS (SIGMOD 2000).
type ORCLUSConfig = orclus.Config

// ORCLUSResult is the output of an ORCLUS run: clusters with arbitrary
// orthonormal subspace bases instead of axis subsets.
type ORCLUSResult = orclus.Result

// ORCLUSCluster is one generalized projected cluster.
type ORCLUSCluster = orclus.Cluster

// RunORCLUS executes generalized projected clustering on ds.
func RunORCLUS(ds *Dataset, cfg ORCLUSConfig) (*ORCLUSResult, error) { return orclus.Run(ds, cfg) }

// OrientedConfig describes a synthetic workload of arbitrarily oriented
// projected clusters.
type OrientedConfig = synth.OrientedConfig

// OrientedTruth records an oriented workload's generated structure.
type OrientedTruth = synth.OrientedTruth

// GenerateOriented produces a labeled dataset of arbitrarily oriented
// projected clusters.
func GenerateOriented(cfg OrientedConfig) (*Dataset, *OrientedTruth, error) {
	return synth.GenerateOriented(cfg)
}

// KMedoidsConfig parameterizes the full-dimensional CLARANS-style
// baseline.
type KMedoidsConfig = medoid.Config

// KMedoidsResult is a full-dimensional clustering.
type KMedoidsResult = medoid.Result

// RunKMedoids executes the full-dimensional k-medoids baseline on ds.
func RunKMedoids(ds *Dataset, cfg KMedoidsConfig) (*KMedoidsResult, error) {
	return medoid.Run(ds, cfg)
}

// ConfusionMatrix cross-tabulates output clusters against ground-truth
// input clusters, in the layout of the paper's Tables 3 and 4.
type ConfusionMatrix = eval.ConfusionMatrix

// NewConfusion builds a confusion matrix from ground-truth labels and an
// assignment vector (negative = outlier).
func NewConfusion(labels, assignments []int, numOutput, numInput int) (*ConfusionMatrix, error) {
	return eval.NewConfusion(labels, assignments, numOutput, numInput)
}

// DimensionMatch scores a recovered dimension set against ground truth.
type DimensionMatch = eval.DimensionMatch

// MatchDimensions compares the recovered dimension set found against
// truth, returning precision, recall and exactness.
func MatchDimensions(found, truth []int) DimensionMatch { return eval.MatchDimensions(found, truth) }

// AverageOverlap computes Σ|C_i| / |∪C_i| over possibly-overlapping
// cluster membership lists (the paper's overlap metric for CLIQUE).
func AverageOverlap(memberships [][]int) (float64, error) { return eval.AverageOverlap(memberships) }

// Coverage returns the fraction of true cluster points appearing in at
// least one output cluster.
func Coverage(labels []int, memberships [][]int) float64 { return eval.Coverage(labels, memberships) }

// AdjustedRandIndex scores an assignment against ground-truth labels;
// 1 = identical partitions, ~0 = chance. Negative values of either side
// form one extra outlier group.
func AdjustedRandIndex(labels, assignments []int) (float64, error) {
	return eval.AdjustedRandIndex(labels, assignments)
}

// NormalizedMutualInfo scores an assignment against ground-truth labels
// in [0, 1] (arithmetic normalization).
func NormalizedMutualInfo(labels, assignments []int) (float64, error) {
	return eval.NormalizedMutualInfo(labels, assignments)
}

// NewDataset returns an empty dataset of the given dimensionality.
func NewDataset(dims int) *Dataset { return dataset.New(dims) }

// FromRows builds a dataset from rows, with optional labels.
func FromRows(rows [][]float64, labels []int) (*Dataset, error) {
	return dataset.FromRows(rows, labels)
}

// ReadCSV reads a dataset from CSV; if hasLabels is set, the last column
// is the ground-truth label.
func ReadCSV(r io.Reader, hasLabels bool) (*Dataset, error) { return dataset.ReadCSV(r, hasLabels) }

// LoadFile reads a dataset from a .csv or binary file produced by
// Dataset.SaveFile.
func LoadFile(path string, hasLabels bool) (*Dataset, error) {
	return dataset.LoadFile(path, hasLabels)
}

// Algorithm is one entry of the algorithm registry: a named clustering
// algorithm with declared capabilities, fitted through the uniform
// Fit entry point. PROCLUS, CLIQUE, ORCLUS and the full-dimensional
// k-medoids baseline register themselves at init.
type Algorithm = registry.Algorithm

// Model is a fitted clustering returned by Fit: cluster count,
// per-point assignments (when the fit holds them), nearest-medoid
// assignment of new points where supported, and a uniform report.
// Unwrap exposes the algorithm-specific result type.
type Model = registry.Model

// FitConfig is the shared configuration of the registry's Fit entry
// point: the common knobs (K, L, Seed, Workers, Sketch, Kernel,
// observability sinks) plus per-algorithm parameter blocks. Knobs an
// algorithm does not support are rejected with an error naming it.
type FitConfig = registry.Config

// FitSource selects a fit's input: exactly one of an in-memory Dataset
// or a streaming PointSource.
type FitSource = registry.Source

// AlgorithmCaps declares which shared knobs an algorithm accepts.
type AlgorithmCaps = registry.Caps

// CliqueParams, OrclusParams and MedoidParams are the per-algorithm
// parameter blocks of FitConfig.
type (
	CliqueParams = registry.CliqueParams
	OrclusParams = registry.OrclusParams
	MedoidParams = registry.MedoidParams
)

// Fit runs the named registered algorithm ("proclus", "clique",
// "orclus" or "kmedoids") on src. Results are bit-identical to calling
// the algorithm's direct entry point with the same parameters.
func Fit(ctx context.Context, name string, src FitSource, cfg FitConfig) (Model, error) {
	return registry.Fit(ctx, name, src, cfg)
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string { return registry.Names() }

// LookupAlgorithm resolves a registered algorithm by name; the error
// for an unknown name lists what is available.
func LookupAlgorithm(name string) (Algorithm, error) { return registry.Get(name) }
