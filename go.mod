module proclus

go 1.22
