// Command proclus runs the PROCLUS projected clustering algorithm on a
// dataset file and reports the discovered clusters, their dimension
// sets, and — when the input carries ground-truth labels — the confusion
// matrix and external indices of §4.2 of the paper.
//
// Usage:
//
//	proclus -in data.csv -labels -k 5 -l 7
//	proclus -in data.bin -k 5 -l 7 -assign out.csv
//	proclus -in data.bin -k 5 -sweepl 2:9     # try a range of l values
//	proclus -in data.bin -k 5 -l 7 -sketch-dims 16            # JL pruning, identical output
//	proclus -in data.bin -k 5 -l 7 -sketch-dims 16 -sketch-mode approx
//	proclus -in data.bin -k 5 -l 7 -report run.json -trace trace.jsonl
//	proclus -in data.bin -k 5 -l 7 -archive runs/   # append to the run archive
//	proclus -in data.bin -k 5 -l 7 -metrics-addr 127.0.0.1:9187
//	proclus -in data.bin -k 5 -l 7 -chrometrace trace.json
//	proclus -in data.bin -k 5 -l 7 -cpuprofile cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"proclus/internal/core"
	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/obs/cliflags"
	"proclus/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "proclus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("proclus", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")
		k         = fs.Int("k", 5, "number of clusters")
		l         = fs.Int("l", 0, "average dimensions per cluster; required unless -sweepl is set")
		sweepL    = fs.String("sweepl", "", "sweep l over a min:max range and report the objective curve")
		sweepK    = fs.String("sweepk", "", "sweep k over a min:max range and report the objective curve")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "goroutine budget: concurrent restarts plus per-pass parallelism (0 = GOMAXPROCS); results are identical for any value")
		normalize = fs.String("normalize", "", "rescale dimensions before clustering: minmax or zscore")
		assignOut = fs.String("assign", "", "optional path for a point→cluster assignment CSV")
		stream    = fs.Bool("stream", false, "cluster the input out of core: binary input only, full-data passes stream in blocks so resident memory is O(sample + block) instead of O(N·d)")
		blockPts  = fs.Int("block-points", 0, "points per streamed block (0 = default); only with -stream")
		skDims    = fs.Int("sketch-dims", 0, "enable the random-projection sketch tier at this sketch dimensionality (0 = off); must stay below the data dimensionality")
		skMode    = fs.String("sketch-mode", "prune", "sketch tier mode: prune (bit-identical output, fewer exact distance evaluations) or approx (bounded-error, larger speedup)")
		kernel    = fs.String("kernel", "pruned", "exact distance-kernel tier: pruned (early abandonment + packed medoid rows, bit-identical output) or naive (full evaluation)")
	)
	obsFlags := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	if *l == 0 && *sweepL == "" {
		fs.Usage()
		return fmt.Errorf("one of -l or -sweepl is required")
	}
	sketchMode, err := core.ParseSketchMode(*skMode)
	if err != nil {
		return err
	}
	kernelMode, err := core.ParseKernelMode(*kernel)
	if err != nil {
		return err
	}
	if *stream {
		switch {
		case *normalize != "":
			return fmt.Errorf("-stream is incompatible with -normalize: rescaling needs the matrix in memory")
		case *sweepL != "" || *sweepK != "":
			return fmt.Errorf("-stream is incompatible with -sweepl/-sweepk: sweeps rerun over the in-memory dataset")
		case *skDims > 0:
			return fmt.Errorf("-stream is incompatible with -sketch-dims: the sketch tier projects the in-memory point matrix, which streamed runs never hold")
		case strings.HasSuffix(strings.ToLower(*in), ".csv"):
			return fmt.Errorf("-stream requires the binary dataset format (convert with datagen or dsstat)")
		}
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	// Sweeps rerun many configs through core.SweepL/SweepK and stay on
	// the direct entry points; single runs route through the algorithm
	// registry (bit-identical to the direct call — the registry's
	// metamorphic suite pins this).
	cfgFor := func() core.Config {
		return core.Config{
			K: *k, L: *l, Seed: *seed, Workers: *workers,
			Sketch:   core.SketchConfig{Dims: *skDims, Mode: sketchMode},
			Kernel:   kernelMode,
			Observer: sess.Observer, Metrics: sess.Metrics, Series: sess.Series,
		}
	}
	rcfg := registry.Config{
		K: *k, L: *l, Seed: *seed, Workers: *workers,
		Sketch:   core.SketchConfig{Dims: *skDims, Mode: sketchMode},
		Kernel:   kernelMode,
		Observer: sess.Observer, Metrics: sess.Metrics, Series: sess.Series,
	}
	// The run context flows through the session so the stall watchdog
	// (-stall-cancel) can abort a wedged run.
	ctx, cancel := sess.Context(context.Background())
	defer cancel()
	if *stream {
		return runStreamed(ctx, out, sess, *in, *blockPts, rcfg, obsFlags.Report, *assignOut)
	}
	ds, err := dataset.LoadFile(*in, *hasLabels)
	if err != nil {
		return err
	}
	switch *normalize {
	case "":
	case "minmax":
		if _, _, err := ds.MinMaxScale(0, 100); err != nil {
			return err
		}
	case "zscore":
		ds.Standardize()
	default:
		return fmt.Errorf("unknown -normalize mode %q (want minmax or zscore)", *normalize)
	}
	cfg := cfgFor()
	report := func(res *core.Result) error {
		return finishRun(sess, obsFlags.Report, res, *in, ds.Labeled(), nil)
	}

	if *sweepL != "" {
		return runSweepL(out, ds, cfg, *sweepL, report)
	}
	if *sweepK != "" {
		return runSweepK(out, ds, cfg, *sweepK, report)
	}

	start := time.Now()
	m, err := registry.Fit(ctx, "proclus", registry.Source{Dataset: ds}, rcfg)
	if err != nil {
		return err
	}
	res := m.Unwrap().(*core.Result)
	elapsed := time.Since(start)

	fmt.Fprintf(out, "PROCLUS: %d points × %d dims, k=%d l=%d — %s (%d trials)\n",
		ds.Len(), ds.Dims(), *k, *l, elapsed.Round(time.Millisecond), res.Iterations)
	fmt.Fprintf(out, "objective (avg segmental distance to centroid): %.4f\n\n", res.Objective)
	fmt.Fprintf(out, "%-8s %-40s %10s\n", "Cluster", "Dimensions (1-based)", "Points")
	for i, cl := range res.Clusters {
		fmt.Fprintf(out, "%-8d %-40s %10d\n", i+1, fmt.Sprint(oneBased(cl.Dimensions)), len(cl.Members))
	}
	fmt.Fprintf(out, "%-8s %-40s %10d\n", "Outliers", "-", res.NumOutliers())

	var quality map[string]float64
	if ds.Labeled() {
		cm, err := eval.NewConfusion(eval.LabelsFromDataset(ds), res.Assignments,
			len(res.Clusters), ds.NumLabels())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nconfusion matrix (output rows × input columns):\n%s", cm)
		fmt.Fprintf(out, "purity: %.3f", cm.Purity())
		quality = map[string]float64{"purity": cm.Purity()}
		if ari, err := eval.AdjustedRandIndex(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "   ARI: %.3f", ari)
			quality["ari"] = ari
		}
		if nmi, err := eval.NormalizedMutualInfo(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
			quality["nmi"] = nmi
		}
		fmt.Fprintln(out)
	}

	if *assignOut != "" {
		if err := writeAssignments(*assignOut, res.Assignments); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nassignments written to %s\n", *assignOut)
	}
	return finishRun(sess, obsFlags.Report, res, *in, ds.Labeled(), quality)
}

// runStreamed clusters a binary dataset file out of core via the
// registry's streamed path (core.RunStream underneath): the hill climb
// works on the resident medoid sample and every full-data stage streams
// the file in blocks, so resident memory stays O(sample + block)
// however large the file is. Labeled inputs still get the confusion
// matrix and external indices — the label column is scanned separately
// without loading the points.
func runStreamed(ctx context.Context, out io.Writer, sess *cliflags.Session, in string, blockPoints int, cfg registry.Config, reportPath, assignOut string) error {
	src, err := dataset.OpenFileSource(in, blockPoints)
	if err != nil {
		return err
	}
	start := time.Now()
	m, err := registry.Fit(ctx, "proclus", registry.Source{Stream: src}, cfg)
	if err != nil {
		return err
	}
	res := m.Unwrap().(*core.Result)
	elapsed := time.Since(start)

	fmt.Fprintf(out, "PROCLUS (streamed, %d-point blocks): %d points × %d dims, k=%d l=%d — %s (%d trials)\n",
		src.BlockPoints(), src.Len(), src.Dims(), cfg.K, cfg.L, elapsed.Round(time.Millisecond), res.Iterations)
	fmt.Fprintf(out, "objective (avg segmental distance to centroid): %.4f\n\n", res.Objective)
	fmt.Fprintf(out, "%-8s %-40s %10s\n", "Cluster", "Dimensions (1-based)", "Points")
	for i, cl := range res.Clusters {
		fmt.Fprintf(out, "%-8d %-40s %10d\n", i+1, fmt.Sprint(oneBased(cl.Dimensions)), len(cl.Members))
	}
	fmt.Fprintf(out, "%-8s %-40s %10d\n", "Outliers", "-", res.NumOutliers())

	var quality map[string]float64
	if src.Labeled() {
		labels, err := dataset.ScanLabels(in)
		if err != nil {
			return err
		}
		numLabels := 0
		for _, l := range labels {
			if l+1 > numLabels {
				numLabels = l + 1
			}
		}
		cm, err := eval.NewConfusion(labels, res.Assignments, len(res.Clusters), numLabels)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nconfusion matrix (output rows × input columns):\n%s", cm)
		fmt.Fprintf(out, "purity: %.3f", cm.Purity())
		quality = map[string]float64{"purity": cm.Purity()}
		if ari, err := eval.AdjustedRandIndex(labels, res.Assignments); err == nil {
			fmt.Fprintf(out, "   ARI: %.3f", ari)
			quality["ari"] = ari
		}
		if nmi, err := eval.NormalizedMutualInfo(labels, res.Assignments); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
			quality["nmi"] = nmi
		}
		fmt.Fprintln(out)
	}

	if assignOut != "" {
		if err := writeAssignments(assignOut, res.Assignments); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nassignments written to %s\n", assignOut)
	}
	return finishRun(sess, reportPath, res, in, src.Labeled(), quality)
}

// finishRun writes res's run report to path (empty path skips the
// file), stamping the dataset's provenance, which only the CLI knows,
// then appends the run — with any computed quality indices — to the
// session's archive when -archive is set.
func finishRun(sess *cliflags.Session, path string, res *core.Result, source string, labeled bool, quality map[string]float64) error {
	rep := res.Report()
	rep.Dataset.Source = source
	rep.Dataset.Labeled = labeled
	if path != "" {
		if err := rep.WriteFile(path); err != nil {
			return err
		}
	}
	_, err := sess.ArchiveRun(rep, quality)
	return err
}

func runSweepL(out io.Writer, ds *dataset.Dataset, cfg core.Config, spec string, report func(*core.Result) error) error {
	lo, hi, err := parseRange(spec)
	if err != nil {
		return err
	}
	points, err := core.SweepL(ds, cfg, lo, hi)
	if err != nil {
		return err
	}
	suggested, err := core.SuggestL(points)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%6s %12s %10s\n", "l", "objective", "outliers")
	var suggestedRes *core.Result
	for _, p := range points {
		marker := ""
		if p.L == suggested {
			marker = "  ← suggested"
			suggestedRes = p.Result
		}
		fmt.Fprintf(out, "%6d %12.4f %10d%s\n", p.L, p.Objective, p.Outliers, marker)
	}
	fmt.Fprintf(out, "\nsuggested l: %d (objective elbow; see §4.3 of the paper)\n", suggested)
	return report(suggestedRes)
}

func runSweepK(out io.Writer, ds *dataset.Dataset, cfg core.Config, spec string, report func(*core.Result) error) error {
	lo, hi, err := parseRange(spec)
	if err != nil {
		return err
	}
	points, err := core.SweepK(ds, cfg, lo, hi)
	if err != nil {
		return err
	}
	suggested, err := core.SuggestK(points)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%6s %12s %10s\n", "k", "objective", "outliers")
	var suggestedRes *core.Result
	for _, p := range points {
		marker := ""
		if p.K == suggested {
			marker = "  ← suggested"
			suggestedRes = p.Result
		}
		fmt.Fprintf(out, "%6d %12.4f %10d%s\n", p.K, p.Objective, p.Result.NumOutliers(), marker)
	}
	fmt.Fprintf(out, "\nsuggested k: %d (objective knee)\n", suggested)
	return report(suggestedRes)
}

func parseRange(spec string) (lo, hi int, err error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("range %q must be min:max", spec)
	}
	lo, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", spec, err)
	}
	hi, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", spec, err)
	}
	return lo, hi, nil
}

// writeAssignments writes the assignment CSV atomically: the rows go to
// a temporary file in the destination directory, which replaces path
// only after a complete, synced write. An interrupted or failed run
// never leaves a partial file at path.
func writeAssignments(path string, assignments []int) (retErr error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if _, err := f.WriteString("point,cluster\n"); err != nil {
		return err
	}
	for i, a := range assignments {
		if _, err := f.WriteString(strconv.Itoa(i) + "," + strconv.Itoa(a) + "\n"); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func oneBased(dims []int) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		out[i] = d + 1
	}
	return out
}
