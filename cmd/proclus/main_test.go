package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/core"
	"proclus/internal/obs/metrics"
	"proclus/internal/obs/series"
	"proclus/internal/synth"
)

// writeWorkload generates a small labeled binary dataset and returns its
// path.
func writeWorkload(t *testing.T) string {
	t.Helper()
	ds, _, err := synth.Generate(synth.Config{
		N: 1500, Dims: 8, K: 2, FixedDims: 3, MinSizeFraction: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClusters(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"PROCLUS:", "objective", "Cluster", "Outliers", "confusion matrix", "purity:", "ARI:", "NMI:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWritesAssignments(t *testing.T) {
	path := writeWorkload(t)
	assignPath := filepath.Join(t.TempDir(), "a.csv")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-assign", assignPath}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(assignPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "point,cluster" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1501 {
		t.Fatalf("%d assignment lines, want 1501", len(lines))
	}
}

func TestRunSweep(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "2:5"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "suggested l:") {
		t.Fatalf("output missing suggestion:\n%s", got)
	}
}

func TestRunNormalize(t *testing.T) {
	path := writeWorkload(t)
	for _, mode := range []string{"minmax", "zscore"} {
		var sb strings.Builder
		if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-normalize", mode}, &sb); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(sb.String(), "PROCLUS:") {
			t.Fatalf("%s: output missing header", mode)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-normalize", "nope"}, &sb); err == nil {
		t.Fatal("unknown normalize mode accepted")
	}
}

func TestRunSweepK(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-l", "3", "-sweepk", "1:4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "suggested k:") {
		t.Fatalf("output missing k suggestion:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "2", "-l", "3"}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "x.bin"}, &sb); err == nil {
		t.Error("missing -l accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "absent.bin"), "-l", "3"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	path := writeWorkload(t)
	if err := run([]string{"-in", path, "-k", "2", "-l", "99"}, &sb); err == nil {
		t.Error("l > dims accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "banana"}, &sb); err == nil {
		t.Error("bad sweep range accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "5:2"}, &sb); err == nil {
		t.Error("inverted sweep range accepted")
	}
}

func TestParseRange(t *testing.T) {
	if lo, hi, err := parseRange("2:7"); err != nil || lo != 2 || hi != 7 {
		t.Fatalf("parseRange: %d %d %v", lo, hi, err)
	}
	for _, bad := range []string{"", "3", "a:b", "2:"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q) accepted", bad)
		}
	}
}

func TestRunWritesReportAndTrace(t *testing.T) {
	path := writeWorkload(t)
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	err := run([]string{"-in", path, "-k", "2", "-l", "3",
		"-report", reportPath, "-trace", tracePath,
		"-cpuprofile", cpuPath, "-memprofile", memPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Algorithm string `json:"algorithm"`
		Dataset   struct {
			Points  int    `json:"points"`
			Labeled bool   `json:"labeled"`
			Source  string `json:"source"`
		} `json:"dataset"`
		Counters struct {
			DistanceEvals int64 `json:"distance_evals"`
			PointsScanned int64 `json:"points_scanned"`
		} `json:"counters"`
		Clusters []struct {
			Size int `json:"size"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Algorithm != "proclus" {
		t.Errorf("algorithm = %q", rep.Algorithm)
	}
	if rep.Dataset.Points != 1500 || !rep.Dataset.Labeled || rep.Dataset.Source != path {
		t.Errorf("dataset info = %+v", rep.Dataset)
	}
	if rep.Counters.DistanceEvals <= 0 || rep.Counters.PointsScanned <= 0 {
		t.Errorf("counters not collected: %+v", rep.Counters)
	}
	if len(rep.Clusters) != 2 {
		t.Errorf("clusters: %d", len(rep.Clusters))
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has only %d lines", len(lines))
	}
	var first, last struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("trace line 0 is not valid JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("trace last line is not valid JSON: %v", err)
	}
	if first.Type != "run_start" || last.Type != "run_end" {
		t.Errorf("trace bracketing: first %q, last %q", first.Type, last.Type)
	}

	for _, p := range []string{cpuPath, memPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestRunSweepWritesReport(t *testing.T) {
	path := writeWorkload(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "2:4", "-report", reportPath}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Algorithm string `json:"algorithm"`
		Config    struct {
			L int `json:"l"`
		} `json:"config"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("sweep report is not valid JSON: %v", err)
	}
	if rep.Algorithm != "proclus" || rep.Config.L < 2 || rep.Config.L > 4 {
		t.Errorf("sweep report: algorithm %q, l %d", rep.Algorithm, rep.Config.L)
	}
}

func TestRunProgressLogs(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-progress"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PROCLUS:") {
		t.Fatalf("output missing header:\n%s", sb.String())
	}
}

// TestRunMetricsAddrInvariant pins the acceptance property that
// attaching the live metrics endpoint changes no clustering output.
func TestRunMetricsAddrInvariant(t *testing.T) {
	path := writeWorkload(t)
	var plain, monitored strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3"}, &plain); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", path, "-k", "2", "-l", "3",
		"-metrics-addr", "127.0.0.1:0"}, &monitored)
	if err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		lines := strings.Split(s, "\n")
		out := lines[:0]
		for _, l := range lines {
			if strings.HasPrefix(l, "PROCLUS:") {
				// The header embeds the elapsed wall time.
				l = l[:strings.LastIndex(l, "—")]
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if stripTiming(plain.String()) != stripTiming(monitored.String()) {
		t.Errorf("monitoring changed output:\n--- plain ---\n%s\n--- monitored ---\n%s",
			plain.String(), monitored.String())
	}
}

func TestRunChromeTrace(t *testing.T) {
	path := writeWorkload(t)
	chrome := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	err := run([]string{"-in", path, "-k", "2", "-l", "3", "-chrometrace", chrome}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace empty")
	}
}

func TestRunStreamed(t *testing.T) {
	path := writeWorkload(t)
	assignPath := filepath.Join(t.TempDir(), "a.csv")
	var sb strings.Builder
	err := run([]string{"-in", path, "-k", "2", "-l", "3",
		"-stream", "-block-points", "256", "-assign", assignPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"PROCLUS (streamed, 256-point blocks):", "objective",
		"Cluster", "Outliers", "confusion matrix", "purity:", "ARI:", "NMI:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	data, err := os.ReadFile(assignPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1501 {
		t.Fatalf("%d assignment lines, want 1501", len(lines))
	}
}

func TestRunStreamedWritesReport(t *testing.T) {
	path := writeWorkload(t)
	repPath := filepath.Join(t.TempDir(), "run.json")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-stream", "-report", repPath}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Config struct {
			Stream      bool `json:"stream"`
			BlockPoints int  `json:"block_points"`
		} `json:"config"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Config.Stream || rep.Config.BlockPoints == 0 {
		t.Fatalf("report config echo = %+v, want stream=true with a block size", rep.Config)
	}
}

func TestRunStreamedRejectsIncompatibleFlags(t *testing.T) {
	path := writeWorkload(t)
	cases := [][]string{
		{"-in", path, "-k", "2", "-l", "3", "-stream", "-normalize", "minmax"},
		{"-in", path, "-k", "2", "-stream", "-sweepl", "2:5"},
		{"-in", path, "-k", "2", "-stream", "-sweepk", "2:4"},
		{"-in", "data.csv", "-k", "2", "-l", "3", "-stream"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: %v accepted with -stream", i, args)
		}
	}
}

// TestRunStallCancelAborts wires the hair-trigger stall watchdog to the
// run context: the command must fail with a cancellation error, must
// not leave a partial assignment file behind, and must still flush the
// series recorded before the abort.
func TestRunStallCancelAborts(t *testing.T) {
	path := writeWorkload(t)
	dir := t.TempDir()
	assignPath := filepath.Join(dir, "a.csv")
	seriesPath := filepath.Join(dir, "s.json")
	var sb strings.Builder
	err := run([]string{
		"-in", path, "-k", "2", "-l", "3",
		"-stall-iters", "1", "-stall-cancel",
		"-assign", assignPath, "-series", seriesPath,
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("stalled run error = %v, want context cancellation", err)
	}
	if _, statErr := os.Stat(assignPath); !os.IsNotExist(statErr) {
		t.Errorf("aborted run left an assignment file (stat err %v)", statErr)
	}
	snap, readErr := series.ReadSnapshotFile(seriesPath)
	if readErr != nil {
		t.Fatalf("series snapshot not flushed: %v", readErr)
	}
	if s := snap.Find(core.SeriesIterObjective, metrics.L("restart", "1")); s == nil || s.Total == 0 {
		t.Error("flushed snapshot has no objective series")
	}
}

// TestRunStreamedStallCancel exercises the same abort through the
// out-of-core path.
func TestRunStreamedStallCancel(t *testing.T) {
	path := writeWorkload(t)
	assignPath := filepath.Join(t.TempDir(), "a.csv")
	var sb strings.Builder
	err := run([]string{
		"-in", path, "-k", "2", "-l", "3", "-stream",
		"-stall-iters", "1", "-stall-cancel", "-assign", assignPath,
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("stalled streamed run error = %v, want context cancellation", err)
	}
	if _, statErr := os.Stat(assignPath); !os.IsNotExist(statErr) {
		t.Errorf("aborted streamed run left an assignment file (stat err %v)", statErr)
	}
}
