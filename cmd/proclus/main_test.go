package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/synth"
)

// writeWorkload generates a small labeled binary dataset and returns its
// path.
func writeWorkload(t *testing.T) string {
	t.Helper()
	ds, _, err := synth.Generate(synth.Config{
		N: 1500, Dims: 8, K: 2, FixedDims: 3, MinSizeFraction: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClusters(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"PROCLUS:", "objective", "Cluster", "Outliers", "confusion matrix", "purity:", "ARI:", "NMI:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWritesAssignments(t *testing.T) {
	path := writeWorkload(t)
	assignPath := filepath.Join(t.TempDir(), "a.csv")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-assign", assignPath}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(assignPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "point,cluster" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1501 {
		t.Fatalf("%d assignment lines, want 1501", len(lines))
	}
}

func TestRunSweep(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "2:5"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "suggested l:") {
		t.Fatalf("output missing suggestion:\n%s", got)
	}
}

func TestRunNormalize(t *testing.T) {
	path := writeWorkload(t)
	for _, mode := range []string{"minmax", "zscore"} {
		var sb strings.Builder
		if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-normalize", mode}, &sb); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(sb.String(), "PROCLUS:") {
			t.Fatalf("%s: output missing header", mode)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-normalize", "nope"}, &sb); err == nil {
		t.Fatal("unknown normalize mode accepted")
	}
}

func TestRunSweepK(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-l", "3", "-sweepk", "1:4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "suggested k:") {
		t.Fatalf("output missing k suggestion:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "2", "-l", "3"}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "x.bin"}, &sb); err == nil {
		t.Error("missing -l accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "absent.bin"), "-l", "3"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	path := writeWorkload(t)
	if err := run([]string{"-in", path, "-k", "2", "-l", "99"}, &sb); err == nil {
		t.Error("l > dims accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "banana"}, &sb); err == nil {
		t.Error("bad sweep range accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-sweepl", "5:2"}, &sb); err == nil {
		t.Error("inverted sweep range accepted")
	}
}

func TestParseRange(t *testing.T) {
	if lo, hi, err := parseRange("2:7"); err != nil || lo != 2 || hi != 7 {
		t.Fatalf("parseRange: %d %d %v", lo, hi, err)
	}
	for _, bad := range []string{"", "3", "a:b", "2:"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q) accepted", bad)
		}
	}
}
