package main

import (
	"strings"
	"testing"
)

// TestRunSketchPruneIdenticalOutput pins the sketch tier's CLI
// contract: -sketch-dims in the default prune mode changes nothing in
// the rendered clustering.
func TestRunSketchPruneIdenticalOutput(t *testing.T) {
	path := writeWorkload(t)
	var plain, pruned strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "3"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-k", "2", "-l", "3", "-sketch-dims", "4"}, &pruned); err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		lines := strings.Split(s, "\n")
		out := lines[:0]
		for _, l := range lines {
			if strings.HasPrefix(l, "PROCLUS:") {
				l = l[:strings.LastIndex(l, "—")]
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if stripTiming(plain.String()) != stripTiming(pruned.String()) {
		t.Errorf("sketch pruning changed output:\n--- plain ---\n%s\n--- pruned ---\n%s",
			plain.String(), pruned.String())
	}
}

func TestRunSketchApprox(t *testing.T) {
	path := writeWorkload(t)
	var sb strings.Builder
	err := run([]string{"-in", path, "-k", "2", "-l", "3",
		"-sketch-dims", "4", "-sketch-mode", "approx"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PROCLUS:") {
		t.Fatalf("output missing header:\n%s", sb.String())
	}
}

func TestRunSketchFlagErrors(t *testing.T) {
	path := writeWorkload(t)
	cases := [][]string{
		{"-in", path, "-k", "2", "-l", "3", "-stream", "-sketch-dims", "4"},
		{"-in", path, "-k", "2", "-l", "3", "-sketch-mode", "nope"},
		{"-in", path, "-k", "2", "-l", "3", "-sketch-dims", "99"}, // ≥ dims
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: %v accepted", i, args)
		}
	}
}
