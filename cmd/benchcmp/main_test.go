package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proclus/internal/benchcmp"
	"proclus/internal/obs"
)

func writeFixture(t *testing.T, dir, name string, mutate func(*benchcmp.File)) string {
	t.Helper()
	f := &benchcmp.File{
		Schema:    benchcmp.SchemaVersion,
		CreatedAt: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Config:    benchcmp.Config{Experiment: "table1", N: 3000, Seed: 3},
		Records: []benchcmp.Record{{
			Experiment:   "table1",
			WallSeconds:  2.0,
			Runs:         1,
			PhaseSeconds: map[string]float64{"init": 0.2, "iterate": 1.0, "refine": 0.3},
			Counters:     obs.Snapshot{DistanceEvals: 100000, PointsScanned: 50000},
			NsPerOp:      1.5e9,
		}},
	}
	if mutate != nil {
		mutate(f)
	}
	path := filepath.Join(dir, name)
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := f.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIWithinNoiseExitsZero(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", nil)
	cand := writeFixture(t, dir, "cand.json", func(f *benchcmp.File) {
		f.Records[0].WallSeconds *= 1.1
	})
	var sb strings.Builder
	if err := run([]string{base, cand}, &sb); err != nil {
		t.Fatalf("within-noise comparison failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestCLIRegressionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", nil)
	cand := writeFixture(t, dir, "cand.json", func(f *benchcmp.File) {
		f.Records[0].PhaseSeconds["iterate"] *= 2 // the acceptance scenario
	})
	var sb strings.Builder
	err := run([]string{base, cand}, &sb)
	if !errors.Is(err, errRegression) {
		t.Fatalf("2x regression not reported as failure: %v", err)
	}
	if !strings.Contains(sb.String(), "phase_seconds/iterate") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestCLISchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", nil)
	cand := writeFixture(t, dir, "cand.json", func(f *benchcmp.File) {
		f.Schema = benchcmp.SchemaVersion + 1
	})
	var sb strings.Builder
	err := run([]string{base, cand}, &sb)
	if err == nil || errors.Is(err, errRegression) {
		t.Fatalf("schema mismatch not a hard error: %v", err)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"only-one.json"}, &sb); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{"a.json", "b.json"}, &sb); err == nil {
		t.Fatal("missing files accepted")
	}
	if err := run([]string{"-zap"}, &sb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestCLICustomThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeFixture(t, dir, "base.json", nil)
	cand := writeFixture(t, dir, "cand.json", func(f *benchcmp.File) {
		f.Records[0].PhaseSeconds["iterate"] *= 2
	})
	var sb strings.Builder
	// At -time-threshold 3.0 (the CI gate's wide setting) a 2x phase
	// slowdown is tolerated.
	if err := run([]string{"-time-threshold", "3.0", base, cand}, &sb); err != nil {
		t.Fatalf("2x under 3.0 threshold flagged: %v", err)
	}
}
