// Command benchcmp diffs two benchmark-telemetry files produced by
// proclus-bench -bench-json and exits non-zero when the candidate
// regressed beyond the noise thresholds.
//
// Usage:
//
//	benchcmp baseline.json candidate.json
//	benchcmp -time-threshold 3.0 bench/baseline.json BENCH_latest.json
//
// Time metrics (wall seconds, phase seconds, ns/op) are compared with
// the wide -time-threshold; the deterministic work counters with the
// tight -work-threshold. See internal/benchcmp for the schema.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"proclus/internal/benchcmp"
)

// errRegression distinguishes "candidate is slower" from usage and
// I/O failures; both exit non-zero, but a regression has already been
// explained by the printed report.
var errRegression = errors.New("regressions detected")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		timeThreshold = fs.Float64("time-threshold", 0.5,
			"relative slowdown beyond which a time metric is a regression (0.5 = 1.5x)")
		workThreshold = fs.Float64("work-threshold", 0.01,
			"relative tolerance for the deterministic work counters")
		minSeconds = fs.Float64("min-seconds", 0.01,
			"ignore time metrics where both sides measure below this floor")
	)
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: benchcmp [flags] baseline.json candidate.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected 2 files, got %d", fs.NArg())
	}
	baseline, err := benchcmp.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	candidate, err := benchcmp.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	rep, err := benchcmp.Compare(baseline, candidate, benchcmp.Options{
		TimeThreshold: *timeThreshold,
		WorkThreshold: *workThreshold,
		MinSeconds:    *minSeconds,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteText(out); err != nil {
		return err
	}
	if rep.HasRegressions() {
		return errRegression
	}
	return nil
}
