// Command clique runs the CLIQUE subspace clustering baseline on a
// dataset file and reports the dense-unit clusters per subspace,
// together with the coverage and average-overlap metrics the PROCLUS
// paper uses to compare the two algorithms (§4.2).
//
// Usage:
//
//	clique -in data.csv -labels -xi 10 -tau 0.005
//	clique -in data.bin -xi 10 -tau 0.001 -fixeddims 7
//	clique -in data.bin -highest -v            # report top level, list regions
//	clique -in data.bin -report run.json -trace trace.jsonl
//	clique -in data.bin -xi 10 -archive runs/      # append to the run archive
//	clique -in data.bin -metrics-addr 127.0.0.1:9187
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"proclus/internal/clique"
	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/obs/cliflags"
	"proclus/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "clique: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("clique", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")
		xi        = fs.Int("xi", 10, "intervals per dimension (ξ)")
		tau       = fs.Float64("tau", 0.005, "density threshold as a fraction of N (τ)")
		maxDims   = fs.Int("maxdims", 0, "stop the subspace search at this dimensionality (0 = unlimited)")
		fixedDims = fs.Int("fixeddims", 0, "report clusters only in subspaces of exactly this dimensionality")
		maximal   = fs.Bool("maximal", false, "report only maximal dense subspaces")
		highest   = fs.Bool("highest", false, "report only the highest dimensionality reached")
		mdl       = fs.Bool("mdl", false, "enable MDL subspace pruning (CLIQUE §3.2)")
		workers   = fs.Int("workers", 0, "goroutine budget for the histogram and counting passes (0 = GOMAXPROCS); results are identical for any value")
		verbose   = fs.Bool("v", false, "list every cluster with its region description")
		stream    = fs.Bool("stream", false, "run out of core: binary input only, every pass streams the file in blocks; results are bit-identical to the in-memory run")
		blockPts  = fs.Int("block-points", 0, "points per streamed block (0 = default); only with -stream")
	)
	obsFlags := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	// The run routes through the algorithm registry, which forwards to
	// clique.Run/RunStream field for field — bit-identical to a direct
	// call (pinned by the registry's metamorphic suite).
	cfg := registry.Config{
		Clique: registry.CliqueParams{
			Xi: *xi, Tau: *tau, MaxDims: *maxDims, FixedDims: *fixedDims,
			ReportMaximal: *maximal, ReportHighest: *highest, MDLPruning: *mdl,
		},
		Workers: *workers, Observer: sess.Observer, Metrics: sess.Metrics,
		Series: sess.Series,
	}
	// The streamed path runs under the session context so the stall
	// watchdog (-stall-cancel) can abort a wedged block scan.
	ctx, cancel := sess.Context(context.Background())
	defer cancel()
	var (
		res     *clique.Result
		ds      *dataset.Dataset
		n, d    int
		labeled bool
		elapsed time.Duration
		mode    string
	)
	if *stream {
		if strings.HasSuffix(strings.ToLower(*in), ".csv") {
			return fmt.Errorf("-stream requires the binary dataset format (convert with datagen or dsstat)")
		}
		src, err := dataset.OpenFileSource(*in, *blockPts)
		if err != nil {
			return err
		}
		n, d, labeled = src.Len(), src.Dims(), src.Labeled()
		mode = fmt.Sprintf(" (streamed, %d-point blocks)", src.BlockPoints())
		start := time.Now()
		m, err := registry.Fit(ctx, "clique", registry.Source{Stream: src}, cfg)
		if err != nil {
			return err
		}
		res = m.Unwrap().(*clique.Result)
		elapsed = time.Since(start)
	} else {
		var err error
		ds, err = dataset.LoadFile(*in, *hasLabels)
		if err != nil {
			return err
		}
		n, d, labeled = ds.Len(), ds.Dims(), ds.Labeled()
		start := time.Now()
		m, err := registry.Fit(ctx, "clique", registry.Source{Dataset: ds}, cfg)
		if err != nil {
			return err
		}
		res = m.Unwrap().(*clique.Result)
		elapsed = time.Since(start)
	}

	fmt.Fprintf(out, "CLIQUE%s: %d points × %d dims, ξ=%d τ=%.4f — %s\n",
		mode, n, d, *xi, *tau, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "dense units per subspace dimensionality: %v (levels reached: %d)\n",
		res.DenseBySubspaceDim[1:], res.Levels)
	fmt.Fprintf(out, "clusters reported: %d\n", len(res.Clusters))

	coverage := -1.0
	if ds != nil {
		members := clique.Membership(ds, res)
		if ov, err := eval.AverageOverlap(members); err == nil {
			fmt.Fprintf(out, "average overlap: %.2f\n", ov)
		}
		if ds.Labeled() {
			cov := eval.Coverage(eval.LabelsFromDataset(ds), members)
			fmt.Fprintf(out, "cluster-point coverage: %.1f%%\n", 100*cov)
			coverage = cov
		}
	} else {
		fmt.Fprintln(out, "overlap/coverage: skipped (membership needs the in-memory dataset; rerun without -stream to compute them)")
	}
	if *verbose {
		fmt.Fprintln(out)
		for i, cl := range res.Clusters {
			fmt.Fprintf(out, "cluster %3d: subspace %v, %d units, %d points\n",
				i+1, oneBased(cl.Dims), len(cl.Units), cl.Size)
			for _, reg := range clique.Describe(cl) {
				fmt.Fprintf(out, "             region %s\n", reg)
			}
		}
	}
	rep := res.Report()
	rep.Dataset.Source = *in
	rep.Dataset.Labeled = labeled
	if obsFlags.Report != "" {
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	var quality map[string]float64
	if coverage >= 0 {
		quality = map[string]float64{"coverage": coverage}
	}
	_, err = sess.ArchiveRun(rep, quality)
	return err
}

func oneBased(dims []int) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		out[i] = d + 1
	}
	return out
}
