package main

import (
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/dataset"
	"proclus/internal/randx"
)

func writeBlobData(t *testing.T) string {
	t.Helper()
	r := randx.New(5)
	ds := dataset.New(4)
	for i := 0; i < 600; i++ {
		ds.AppendLabeled([]float64{
			30 + r.Normal(0, 2), 70 + r.Normal(0, 2), r.Uniform(0, 100), r.Uniform(0, 100),
		}, 0)
	}
	for i := 0; i < 400; i++ {
		p := []float64{r.Uniform(0, 100), r.Uniform(0, 100), r.Uniform(0, 100), r.Uniform(0, 100)}
		ds.AppendLabeled(p, dataset.Outlier)
	}
	path := filepath.Join(t.TempDir(), "blob.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsClusters(t *testing.T) {
	path := writeBlobData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"CLIQUE:", "dense units", "clusters reported:", "average overlap:", "coverage:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVerboseDescribesRegions(t *testing.T) {
	path := writeBlobData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "region ") {
		t.Fatalf("verbose output missing regions:\n%s", sb.String())
	}
}

func TestRunReportingModes(t *testing.T) {
	path := writeBlobData(t)
	for _, flags := range [][]string{
		{"-highest"},
		{"-maximal"},
		{"-fixeddims", "2"},
		{"-mdl"},
		{"-maxdims", "2"},
	} {
		var sb strings.Builder
		args := append([]string{"-in", path, "-xi", "10", "-tau", "0.05"}, flags...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%v: %v", flags, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.bin")}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	path := writeBlobData(t)
	if err := run([]string{"-in", path, "-xi", "1"}, &sb); err == nil {
		t.Error("bad xi accepted")
	}
}
