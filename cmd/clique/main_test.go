package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/dataset"
	"proclus/internal/randx"
)

func writeBlobData(t *testing.T) string {
	t.Helper()
	r := randx.New(5)
	ds := dataset.New(4)
	for i := 0; i < 600; i++ {
		ds.AppendLabeled([]float64{
			30 + r.Normal(0, 2), 70 + r.Normal(0, 2), r.Uniform(0, 100), r.Uniform(0, 100),
		}, 0)
	}
	for i := 0; i < 400; i++ {
		p := []float64{r.Uniform(0, 100), r.Uniform(0, 100), r.Uniform(0, 100), r.Uniform(0, 100)}
		ds.AppendLabeled(p, dataset.Outlier)
	}
	path := filepath.Join(t.TempDir(), "blob.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsClusters(t *testing.T) {
	path := writeBlobData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"CLIQUE:", "dense units", "clusters reported:", "average overlap:", "coverage:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVerboseDescribesRegions(t *testing.T) {
	path := writeBlobData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "region ") {
		t.Fatalf("verbose output missing regions:\n%s", sb.String())
	}
}

func TestRunReportingModes(t *testing.T) {
	path := writeBlobData(t)
	for _, flags := range [][]string{
		{"-highest"},
		{"-maximal"},
		{"-fixeddims", "2"},
		{"-mdl"},
		{"-maxdims", "2"},
	} {
		var sb strings.Builder
		args := append([]string{"-in", path, "-xi", "10", "-tau", "0.05"}, flags...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%v: %v", flags, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.bin")}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	path := writeBlobData(t)
	if err := run([]string{"-in", path, "-xi", "1"}, &sb); err == nil {
		t.Error("bad xi accepted")
	}
}

func TestRunWritesReportAndTrace(t *testing.T) {
	path := writeBlobData(t)
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05",
		"-report", reportPath, "-trace", tracePath}, &sb)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Algorithm string `json:"algorithm"`
		Dataset   struct {
			Points int    `json:"points"`
			Source string `json:"source"`
		} `json:"dataset"`
		Counters struct {
			PointsScanned   int64 `json:"points_scanned"`
			DenseUnitProbes int64 `json:"dense_unit_probes"`
		} `json:"counters"`
		Levels             int   `json:"levels"`
		DenseBySubspaceDim []int `json:"dense_by_subspace_dim"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Algorithm != "clique" {
		t.Errorf("algorithm = %q", rep.Algorithm)
	}
	if rep.Dataset.Points != 1000 || rep.Dataset.Source != path {
		t.Errorf("dataset info = %+v", rep.Dataset)
	}
	if rep.Counters.PointsScanned <= 0 || rep.Counters.DenseUnitProbes <= 0 {
		t.Errorf("counters not collected: %+v", rep.Counters)
	}
	if rep.Levels < 2 || len(rep.DenseBySubspaceDim) != rep.Levels {
		t.Errorf("lattice summary: levels %d, dense %v", rep.Levels, rep.DenseBySubspaceDim)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has only %d lines", len(lines))
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("trace line %d is not valid JSON: %s", i, line)
		}
	}
}

func TestRunStreamed(t *testing.T) {
	path := writeBlobData(t)
	var mem, str strings.Builder
	if err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05"}, &mem); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05",
		"-stream", "-block-points", "128"}, &str)
	if err != nil {
		t.Fatal(err)
	}
	got := str.String()
	for _, want := range []string{
		"CLIQUE (streamed, 128-point blocks):",
		"overlap/coverage: skipped",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("streamed output missing %q:\n%s", want, got)
		}
	}
	// The lattice summary is bit-identical to the in-memory run.
	for _, line := range strings.Split(mem.String(), "\n") {
		if strings.HasPrefix(line, "dense units") || strings.HasPrefix(line, "clusters reported:") {
			if !strings.Contains(got, line) {
				t.Fatalf("streamed run diverged from in-memory: missing %q\n%s", line, got)
			}
		}
	}
}

func TestRunStreamedWritesReport(t *testing.T) {
	path := writeBlobData(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var sb strings.Builder
	err := run([]string{"-in", path, "-xi", "10", "-tau", "0.05",
		"-stream", "-block-points", "200", "-report", reportPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Config struct {
			Stream      bool `json:"stream"`
			BlockPoints int  `json:"block_points"`
		} `json:"config"`
		Counters struct {
			StreamBlocks int64 `json:"stream_blocks"`
			StreamBytes  int64 `json:"stream_bytes"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Config.Stream || rep.Config.BlockPoints != 200 {
		t.Errorf("config echo = %+v, want stream=true block_points=200", rep.Config)
	}
	if rep.Counters.StreamBlocks <= 0 || rep.Counters.StreamBytes <= 0 {
		t.Errorf("stream counters not recorded: %+v", rep.Counters)
	}
}

func TestRunStreamedRejectsCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(csvPath, []byte("1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", csvPath, "-stream"}, &sb); err == nil {
		t.Fatal("-stream accepted a CSV input")
	}
}
