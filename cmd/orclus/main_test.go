package main

import (
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/synth"
)

func writeOrientedData(t *testing.T) string {
	t.Helper()
	ds, _, err := synth.GenerateOriented(synth.OrientedConfig{
		N: 1200, Dims: 8, K: 2, L: 2, OutlierFraction: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "o.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClusters(t *testing.T) {
	path := writeOrientedData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"ORCLUS:", "projected energy", "cluster 1:", "ARI", "NMI"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "2", "-l", "2"}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeOrientedData(t)
	if err := run([]string{"-in", path, "-k", "2"}, &sb); err == nil {
		t.Error("missing -l accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-l", "99"}, &sb); err == nil {
		t.Error("l > dims accepted")
	}
}
