package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/synth"
)

func writeOrientedData(t *testing.T) string {
	t.Helper()
	ds, _, err := synth.GenerateOriented(synth.OrientedConfig{
		N: 1200, Dims: 8, K: 2, L: 2, OutlierFraction: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "o.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClusters(t *testing.T) {
	path := writeOrientedData(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"ORCLUS:", "projected energy", "cluster 1:", "ARI", "NMI"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "2", "-l", "2"}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeOrientedData(t)
	if err := run([]string{"-in", path, "-k", "2"}, &sb); err == nil {
		t.Error("missing -l accepted")
	}
	if err := run([]string{"-in", path, "-k", "2", "-l", "99"}, &sb); err == nil {
		t.Error("l > dims accepted")
	}
}

// TestRunRejectsUnsupportedTelemetry pins the loud-failure contract:
// shared cliflags the algorithm cannot honor error out instead of
// silently producing empty artifacts.
func TestRunRejectsUnsupportedTelemetry(t *testing.T) {
	path := writeOrientedData(t)
	dir := t.TempDir()
	cases := [][]string{
		{"-in", path, "-k", "2", "-l", "2", "-series", filepath.Join(dir, "s.json")},
		{"-in", path, "-k", "2", "-l", "2", "-stall-iters", "5"},
		{"-in", path, "-k", "2", "-l", "2", "-stall-deadline", "1s"},
		{"-in", path, "-k", "2", "-l", "2", "-stall-cancel"},
	}
	for _, args := range cases {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil {
			t.Errorf("%v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "unsupported") {
			t.Errorf("%v: error %q does not say unsupported", args, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "s.json")); !os.IsNotExist(err) {
		t.Error("rejected -series still wrote a snapshot")
	}
}

func TestRunArchives(t *testing.T) {
	path := writeOrientedData(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-in", path, "-k", "2", "-l", "2", "-archive", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("-archive left the archive directory empty")
	}
}

func TestRunReportAndTrace(t *testing.T) {
	path := writeOrientedData(t)
	dir := t.TempDir()
	report := filepath.Join(dir, "run.json")
	trace := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	err := run([]string{"-in", path, "-k", "2", "-l", "2",
		"-report", report, "-trace", trace}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithm string  `json:"algorithm"`
		Objective float64 `json:"objective"`
		Clusters  []struct {
			Size int `json:"size"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(rep, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if doc.Algorithm != "orclus" || len(doc.Clusters) != 2 || doc.Objective == 0 {
		t.Errorf("report fields: %+v", doc)
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"run_end"`) {
		t.Errorf("trace missing run_end:\n%s", tr)
	}
}
