// Command orclus runs generalized (arbitrarily oriented) projected
// clustering — the future-work extension of the PROCLUS paper,
// implemented after the authors' ORCLUS follow-up — on a dataset file.
//
// Usage:
//
//	orclus -in data.bin -k 3 -l 2
//	orclus -in data.csv -labels -k 5 -l 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/orclus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "orclus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("orclus", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")
		k         = fs.Int("k", 5, "number of clusters")
		l         = fs.Int("l", 0, "subspace dimensionality per cluster; required")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *l == 0 {
		fs.Usage()
		return fmt.Errorf("-in and -l are required")
	}
	ds, err := dataset.LoadFile(*in, *hasLabels)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := orclus.Run(ds, orclus.Config{K: *k, L: *l, Seed: *seed})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "ORCLUS: %d points × %d dims, k=%d l=%d — %s\n",
		ds.Len(), ds.Dims(), *k, *l, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "weighted projected energy: %.4f\n\n", res.TotalEnergy)
	for i, cl := range res.Clusters {
		fmt.Fprintf(out, "cluster %d: %6d points, energy %.3f\n", i+1, len(cl.Members), cl.Energy)
	}
	if ds.Labeled() {
		if ari, err := eval.AdjustedRandIndex(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "\nARI vs ground truth: %.3f", ari)
		}
		if nmi, err := eval.NormalizedMutualInfo(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
		}
		fmt.Fprintln(out)
	}
	return nil
}
