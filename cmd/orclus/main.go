// Command orclus runs generalized (arbitrarily oriented) projected
// clustering — the future-work extension of the PROCLUS paper,
// implemented after the authors' ORCLUS follow-up — on a dataset file.
// The run is routed through the algorithm registry, so the supported
// flag surface is exactly ORCLUS's registered capabilities: telemetry
// knobs the algorithm cannot honor (-series, the stall watchdog) are
// rejected up front instead of silently doing nothing.
//
// Usage:
//
//	orclus -in data.bin -k 3 -l 2
//	orclus -in data.csv -labels -k 5 -l 3
//	orclus -in data.bin -k 3 -l 2 -outliers -alpha 0.7
//	orclus -in data.bin -k 3 -l 2 -report run.json -trace trace.jsonl
//	orclus -in data.bin -k 3 -l 2 -archive runs/   # append to the run archive
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/obs/cliflags"
	"proclus/internal/orclus"
	"proclus/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "orclus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("orclus", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")
		k         = fs.Int("k", 5, "number of clusters")
		l         = fs.Int("l", 0, "subspace dimensionality per cluster; required")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "goroutine budget for the assignment passes (0 = GOMAXPROCS); results are identical for any value")
		k0Factor  = fs.Int("k0factor", 0, "initial-seed multiplier k0 = k0factor·k (0 = default)")
		alpha     = fs.Float64("alpha", 0, "cluster-count decay factor per merge round (0 = default)")
		outliers  = fs.Bool("outliers", false, "discard points outside every cluster's sphere of influence")
	)
	// The ORCLUS baseline runs uninstrumented internally, so the live
	// monitoring server is not offered; run-level events come from the
	// registry adapter.
	obsFlags := cliflags.Register(fs, cliflags.WithoutServe())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *l == 0 {
		fs.Usage()
		return fmt.Errorf("-in and -l are required")
	}
	// Shared flags the algorithm cannot honor fail loudly: ORCLUS emits
	// no per-iteration progress events, so a series snapshot would be
	// empty and the stall watchdog would never arm.
	if obsFlags.Series != "" {
		return fmt.Errorf("-series is unsupported: orclus records no convergence time series")
	}
	if obsFlags.StallIters > 0 || obsFlags.StallDeadline > 0 || obsFlags.StallCancel {
		return fmt.Errorf("-stall-iters/-stall-deadline/-stall-cancel are unsupported: orclus emits no progress events for the watchdog to track")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	ds, err := dataset.LoadFile(*in, *hasLabels)
	if err != nil {
		return err
	}
	ctx, cancel := sess.Context(context.Background())
	defer cancel()
	m, err := registry.Fit(ctx, "orclus", registry.Source{Dataset: ds}, registry.Config{
		K: *k, L: *l, Seed: *seed, Workers: *workers,
		Orclus: registry.OrclusParams{
			K0Factor: *k0Factor, Alpha: *alpha, HandleOutliers: *outliers,
		},
		Observer: sess.Observer,
	})
	if err != nil {
		return err
	}
	res := m.Unwrap().(*orclus.Result)

	fmt.Fprintf(out, "ORCLUS: %d points × %d dims, k=%d l=%d — %s\n",
		ds.Len(), ds.Dims(), *k, *l, res.Stats.TotalDuration.Round(time.Millisecond))
	fmt.Fprintf(out, "weighted projected energy: %.4f\n\n", res.TotalEnergy)
	for i, cl := range res.Clusters {
		fmt.Fprintf(out, "cluster %d: %6d points, energy %.3f\n", i+1, len(cl.Members), cl.Energy)
	}
	if res.NumOutliers() > 0 {
		fmt.Fprintf(out, "outliers: %d\n", res.NumOutliers())
	}
	var quality map[string]float64
	if ds.Labeled() {
		quality = map[string]float64{}
		if ari, err := eval.AdjustedRandIndex(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "\nARI vs ground truth: %.3f", ari)
			quality["ari"] = ari
		}
		if nmi, err := eval.NormalizedMutualInfo(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
			quality["nmi"] = nmi
		}
		fmt.Fprintln(out)
	}
	rep := m.Report()
	rep.Dataset.Source = *in
	rep.Dataset.Labeled = ds.Labeled()
	if obsFlags.Report != "" {
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	_, err = sess.ArchiveRun(rep, quality)
	return err
}
