// Command orclus runs generalized (arbitrarily oriented) projected
// clustering — the future-work extension of the PROCLUS paper,
// implemented after the authors' ORCLUS follow-up — on a dataset file.
//
// Usage:
//
//	orclus -in data.bin -k 3 -l 2
//	orclus -in data.csv -labels -k 5 -l 3
//	orclus -in data.bin -k 3 -l 2 -report run.json -trace trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/obs"
	"proclus/internal/obs/cliflags"
	"proclus/internal/orclus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "orclus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("orclus", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")
		k         = fs.Int("k", 5, "number of clusters")
		l         = fs.Int("l", 0, "subspace dimensionality per cluster; required")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "goroutine budget for the assignment passes (0 = GOMAXPROCS); results are identical for any value")
	)
	// The ORCLUS baseline runs uninstrumented internally, so the live
	// monitoring server is not offered; the CLI emits run-level events
	// and a run-level report itself.
	obsFlags := cliflags.Register(fs, cliflags.WithoutServe())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *l == 0 {
		fs.Usage()
		return fmt.Errorf("-in and -l are required")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	ds, err := dataset.LoadFile(*in, *hasLabels)
	if err != nil {
		return err
	}
	sess.Observe(obs.Event{
		Type: obs.EvRunStart, Algorithm: "orclus", Points: ds.Len(), Dims: ds.Dims(),
	})
	cfg := orclus.Config{K: *k, L: *l, Seed: *seed, Workers: *workers}
	start := time.Now()
	res, err := orclus.Run(ds, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	sess.Observe(obs.Event{
		Type: obs.EvRunEnd, Algorithm: "orclus",
		Objective: res.TotalEnergy, Seconds: elapsed.Seconds(),
	})

	fmt.Fprintf(out, "ORCLUS: %d points × %d dims, k=%d l=%d — %s\n",
		ds.Len(), ds.Dims(), *k, *l, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "weighted projected energy: %.4f\n\n", res.TotalEnergy)
	for i, cl := range res.Clusters {
		fmt.Fprintf(out, "cluster %d: %6d points, energy %.3f\n", i+1, len(cl.Members), cl.Energy)
	}
	if ds.Labeled() {
		if ari, err := eval.AdjustedRandIndex(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "\nARI vs ground truth: %.3f", ari)
		}
		if nmi, err := eval.NormalizedMutualInfo(ds.Labels(), res.Assignments); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
		}
		fmt.Fprintln(out)
	}
	if obsFlags.Report != "" {
		rep := obs.RunReport{
			Algorithm: "orclus",
			Dataset: obs.DatasetInfo{
				Points: ds.Len(), Dims: ds.Dims(), Labeled: ds.Labeled(), Source: *in,
			},
			Seed:         *seed,
			Config:       cfg,
			Objective:    res.TotalEnergy,
			TotalSeconds: elapsed.Seconds(),
		}
		for i, cl := range res.Clusters {
			rep.Clusters = append(rep.Clusters, obs.ClusterReport{
				ID: i, Size: len(cl.Members), Medoid: -1,
			})
		}
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	return nil
}
