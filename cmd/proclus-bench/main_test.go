package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/benchcmp"
	"proclus/internal/core"
)

func TestRunSingleTableSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1", "-n", "3000"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"table1", "Dimensions", "exact dimension matches", "completed in"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}
}

func TestRunConfusionSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table3", "-n", "3000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "purity:") {
		t.Fatalf("missing purity:\n%s", sb.String())
	}
}

func TestRunFigure9Small(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig9", "-n", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PROCLUS") {
		t.Fatalf("missing series:\n%s", sb.String())
	}
}

func TestRunLSweepSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "lsweep", "-n", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "suggested") {
		t.Fatalf("missing suggestion:\n%s", sb.String())
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig9", "-n", "2000", "-csvdir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "proclus_seconds") {
		t.Fatalf("CSV content: %s", data)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table99"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-zap"}, &sb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWritesBenchReport(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1", "-n", "3000", "-report", reportPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "in-algorithm") {
		t.Fatalf("missing phase-timing line:\n%s", sb.String())
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		Experiment   string  `json:"experiment"`
		WallSeconds  float64 `json:"wall_seconds"`
		ProclusRuns  int     `json:"proclus_runs"`
		PhaseSeconds float64 `json:"phase_seconds"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if len(records) != 1 || records[0].Experiment != "table1" {
		t.Fatalf("records: %+v", records)
	}
	r := records[0]
	if r.ProclusRuns <= 0 || r.PhaseSeconds <= 0 || r.WallSeconds < r.PhaseSeconds {
		t.Errorf("timing record inconsistent: %+v", r)
	}
}

func TestRunWritesBenchJSON(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1", "-n", "3000", "-bench-json", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("BENCH files: %v (%v)", matches, err)
	}
	f, err := benchcmp.Load(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != benchcmp.SchemaVersion {
		t.Errorf("schema = %d", f.Schema)
	}
	if f.Config.Experiment != "table1" || f.Config.N != 3000 {
		t.Errorf("config echo: %+v", f.Config)
	}
	if len(f.Records) != 1 {
		t.Fatalf("records: %+v", f.Records)
	}
	rec := f.Records[0]
	if rec.Experiment != "table1" || rec.Runs != 1 || rec.WallSeconds <= 0 || rec.NsPerOp <= 0 {
		t.Errorf("record not populated: %+v", rec)
	}
	if rec.Counters.DistanceEvals <= 0 {
		t.Errorf("counters not folded: %+v", rec.Counters)
	}
	if rec.PhaseSeconds["iterate"] <= 0 {
		t.Errorf("phase seconds: %+v", rec.PhaseSeconds)
	}
	if len(rec.Metrics) == 0 {
		t.Error("metric snapshot missing")
	}
	if h := rec.Metrics.Find(core.MetricPhaseSeconds); h == nil || h.Histogram == nil || h.Histogram.Count == 0 {
		t.Errorf("phase histogram missing from telemetry: %+v", h)
	}
	// A capture diffed against itself must be regression-free.
	rep, err := benchcmp.Compare(f, f, benchcmp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasRegressions() {
		t.Errorf("self-comparison regressed: %+v", rep.Regressions)
	}
}

func TestRunBenchJSONExplicitPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "capture.json")
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1", "-n", "3000", "-bench-json", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := benchcmp.Load(path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "benchmark telemetry written to "+path) {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunStreamedTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "table1", "-n", "3000",
		"-stream", "-block-points", "256"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"table1", "Dimensions", "completed in"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}
}

func TestRunStreamedFigure7(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "fig7", "-n", "1500",
		"-stream", "-block-points", "256"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PROCLUS") {
		t.Fatalf("missing series:\n%s", sb.String())
	}
}
