package main

import (
	"strings"
	"testing"
)

func TestRunWideSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "wide", "-n", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"wide", "prune", "approx", "bit-identical", "completed in"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}
}

// TestRunExperimentList exercises the comma-separated -experiment
// spelling: both named experiments run, in registration order.
func TestRunExperimentList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1,wide", "-n", "2000"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	t1 := strings.Index(got, "== table1")
	w := strings.Index(got, "== wide")
	if t1 < 0 || w < 0 || w < t1 {
		t.Fatalf("expected table1 then wide in output:\n%s", got)
	}
}

func TestRunExperimentListUnknownName(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "table1,tablex", "-n", "2000"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "tablex") {
		t.Fatalf("unknown name in list: err = %v, want it named", err)
	}
}

// TestRunSketchedTable threads -sketch-dims through the accuracy
// tables; prune mode must leave the rendered table untouched.
func TestRunSketchedTable(t *testing.T) {
	stripTiming := func(s string) string {
		var out []string
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "(") { // timing lines embed wall clock
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	var plain, pruned strings.Builder
	if err := run([]string{"-experiment", "table1", "-n", "2000"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-experiment", "table1", "-n", "2000", "-sketch-dims", "8"}, &pruned); err != nil {
		t.Fatal(err)
	}
	if stripTiming(plain.String()) != stripTiming(pruned.String()) {
		t.Errorf("sketch pruning changed table1:\n--- plain ---\n%s\n--- pruned ---\n%s",
			plain.String(), pruned.String())
	}
}

func TestRunSketchFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-experiment", "table1", "-n", "2000", "-stream", "-sketch-dims", "8"},
		{"-experiment", "table1", "-n", "2000", "-sketch-mode", "nope"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: %v accepted", i, args)
		}
	}
}
