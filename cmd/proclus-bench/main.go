// Command proclus-bench regenerates the tables and figures of §4 of the
// PROCLUS paper. Each experiment prints the same rows or series the
// paper reports; see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	proclus-bench -experiment all          # reduced scale, minutes
//	proclus-bench -experiment table3
//	proclus-bench -experiment fig7 -full   # paper-scale sizes (slow)
//	proclus-bench -experiment table1,wide -n 5000
//	proclus-bench -experiment table1 -bench-json bench/
//	proclus-bench -experiment table1 -archive runs/   # append capture to the run archive
//	proclus-bench -experiment wide -sketch-dims 16
//	proclus-bench -experiment all -progress -metrics-addr 127.0.0.1:9187
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"proclus/internal/benchcmp"
	"proclus/internal/core"
	"proclus/internal/experiments"
	"proclus/internal/obs/archive"
	"proclus/internal/obs/cliflags"
	"proclus/internal/obs/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "proclus-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("proclus-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp        = fs.String("experiment", "all", "comma-separated subset of table1..table5, fig7..fig9, lsweep, oriented, wide, or all")
		full       = fs.Bool("full", false, "paper-scale workloads (N = 100k+; CLIQUE runs take minutes to hours)")
		override   = fs.Int("n", 0, "override the workload size (0 = scale defaults)")
		csvDir     = fs.String("csvdir", "", "also write each experiment's data as <csvdir>/<id>.csv")
		seed       = fs.Uint64("seed", 3, "random seed")
		workers    = fs.Int("workers", 0, "goroutine budget per PROCLUS/CLIQUE run (0 = GOMAXPROCS); results are identical for any value")
		reportPath = fs.String("report", "", "write per-experiment timing records as a JSON array to this path")
		benchJSON  = fs.String("bench-json", "", "write schema-versioned benchmark telemetry to this path (a directory gets BENCH_<timestamp>.json); diff two captures with benchcmp")
		stream     = fs.Bool("stream", false, "run the accuracy tables and fig7 out of core: inputs spill to temporary binary files and the streamed engines cluster them in bounded memory")
		blockPts   = fs.Int("block-points", 0, "points per streamed block (0 = default); only with -stream")
		sketchDims = fs.Int("sketch-dims", 0, "enable the random-projection sketch tier at this sketch dimensionality on the accuracy tables (0 = off; the wide experiment always sketches)")
		sketchMode = fs.String("sketch-mode", "prune", "sketch tier mode: prune (bit-identical output) or approx")
		kernel     = fs.String("kernel", "pruned", "exact distance-kernel tier: pruned (early abandonment + packed medoid rows, bit-identical output) or naive (full evaluation)")
	)
	// -report here keeps its historical timing-array semantics, so the
	// shared flag set skips its own -report.
	obsFlags := cliflags.Register(fs, cliflags.WithoutReport())
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := core.ParseSketchMode(*sketchMode)
	if err != nil {
		return err
	}
	kernelMode, err := core.ParseKernelMode(*kernel)
	if err != nil {
		return err
	}
	if *stream && *sketchDims > 0 {
		return fmt.Errorf("-sketch-dims is incompatible with -stream: the sketch tier projects the in-memory point matrix, which streamed runs never hold")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	exportCSV := func(id string, data csvWriter) error {
		if *csvDir == "" || data == nil {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := data.WriteCSV(f); err != nil {
			return err
		}
		return f.Close()
	}

	// Each runner receives a fresh metric registry so one experiment's
	// histograms never blur into another's telemetry record.
	type runner struct {
		id  string
		run func(reg *metrics.Registry) (*experiments.Report, csvWriter, error)
	}
	caseN := 20000
	figN := 10000
	fig7Ns := []int{10000, 20000, 30000, 40000, 50000}
	if *full {
		caseN = 100000
		figN = 100000
		fig7Ns = []int{100000, 200000, 300000, 400000, 500000}
	}
	if *override > 0 {
		caseN = *override
		figN = *override
		fig7Ns = []int{*override, 2 * *override}
	}
	caseParams := experiments.CaseParams{
		N: caseN, Seed: *seed, Workers: *workers, Observer: sess.Observer,
		Stream: *stream, BlockPoints: *blockPts,
		SketchDims: *sketchDims, SketchMode: mode,
		Kernel: kernelMode,
	}

	runners := []runner{
		{"table1", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := caseParams
			p.Metrics = reg
			d, r, err := experiments.Table1(p)
			return r, d, err
		}},
		{"table2", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := caseParams
			p.Metrics = reg
			d, r, err := experiments.Table2(p)
			return r, d, err
		}},
		{"table3", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := caseParams
			p.Metrics = reg
			d, r, err := experiments.Table3(p)
			return r, d, err
		}},
		{"table4", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := caseParams
			p.Metrics = reg
			d, r, err := experiments.Table4(p)
			return r, d, err
		}},
		{"table5", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.Table5Params{Seed: *seed, Workers: *workers, Metrics: reg, Observer: sess.Observer}
			if *full {
				p.N = 100000
				p.Dims = 20
				p.ClusterDims = 7
				p.Taus = []float64{0.005, 0.008, 0.002}
				p.FixedTau = 0.001
			}
			if *override > 0 {
				p.N = *override
				p.Dims = 10
				p.ClusterDims = 4
			}
			d, r, err := experiments.Table5(p)
			return r, d, err
		}},
		{"fig7", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			d, r, err := experiments.Figure7(experiments.Figure7Params{
				Ns: fig7Ns, WithClique: true, Seed: *seed, Workers: *workers,
				Metrics: reg, Observer: sess.Observer,
				Stream: *stream, BlockPoints: *blockPts,
			})
			return r, d, err
		}},
		{"fig8", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.Figure8Params{
				N: figN, WithClique: true, Seed: *seed, Workers: *workers,
				Metrics: reg, Observer: sess.Observer,
			}
			if *full {
				p.Dims = 20
			}
			if *override > 0 {
				p.Ls = []int{4, 5}
			}
			d, r, err := experiments.Figure8(p)
			return r, d, err
		}},
		{"fig9", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.Figure9Params{N: figN, Seed: *seed, Workers: *workers, Metrics: reg, Observer: sess.Observer}
			if *override > 0 {
				p.Ds = []int{10, 20}
				p.Repeats = 1
			}
			d, r, err := experiments.Figure9(p)
			return r, d, err
		}},
		{"lsweep", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.LSweepParams{N: figN, Seed: *seed, Workers: *workers, Metrics: reg, Observer: sess.Observer}
			if *override > 0 {
				p.Dims = 10
				p.TrueL = 4
			}
			d, r, err := experiments.LSweep(p)
			return r, d, err
		}},
		{"oriented", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.OrientedParams{Seed: *seed, Workers: *workers, Metrics: reg, Observer: sess.Observer}
			if *override > 0 {
				p.N = *override
			}
			d, r, err := experiments.Oriented(p)
			return r, d, err
		}},
		{"wide", func(reg *metrics.Registry) (*experiments.Report, csvWriter, error) {
			p := experiments.WideParams{
				N: figN, SketchDims: *sketchDims, Seed: *seed, Workers: *workers,
				Metrics: reg, Observer: sess.Observer, Kernel: kernelMode,
			}
			d, r, err := experiments.Wide(p)
			return r, d, err
		}},
	}

	// -experiment accepts a comma-separated subset so one invocation
	// (and one telemetry capture) can cover several experiments without
	// paying for all of them.
	want := strings.ToLower(*exp)
	wanted := map[string]bool{}
	for _, name := range strings.Split(want, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wanted[name] = true
		}
	}
	all := wanted["all"]
	delete(wanted, "all")
	var records []benchRecord
	var benchRecords []benchcmp.Record
	for _, r := range runners {
		if !all && !wanted[r.id] {
			continue
		}
		delete(wanted, r.id)
		// Each experiment records into its own registry so histograms never
		// blur across telemetry records. With a live monitoring server that
		// registry is a scoped child of the shared one: /metrics folds every
		// experiment in under an experiment="<id>" label, while the child's
		// own snapshot stays byte-identical to a fresh registry's.
		reg := metrics.NewRegistry()
		if sess.Metrics != nil {
			reg = sess.Metrics.Scope(metrics.L("experiment", r.id))
		}
		start := time.Now()
		rep, data, err := r.run(reg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		wall := time.Since(start)
		fmt.Fprintln(out, rep)
		// Phase timings come from core.Stats, measured inside PROCLUS;
		// the wall-clock line additionally includes dataset generation,
		// evaluation, and any CLIQUE baseline runs.
		if t := rep.Timing; t.Runs > 0 {
			fmt.Fprintf(out, "(%s proclus phases over %d run(s): init %s, iterate %s, refine %s — %s in-algorithm)\n",
				r.id, t.Runs,
				t.Init.Round(time.Millisecond), t.Iterate.Round(time.Millisecond),
				t.Refine.Round(time.Millisecond), t.Total().Round(time.Millisecond))
		}
		fmt.Fprintf(out, "(%s completed in %s wall clock, including generation and evaluation)\n\n",
			r.id, wall.Round(time.Millisecond))
		records = append(records, benchRecord{
			Experiment:     r.id,
			WallSeconds:    wall.Seconds(),
			ProclusRuns:    rep.Timing.Runs,
			InitSeconds:    rep.Timing.Init.Seconds(),
			IterateSeconds: rep.Timing.Iterate.Seconds(),
			RefineSeconds:  rep.Timing.Refine.Seconds(),
			PhaseSeconds:   rep.Timing.Total().Seconds(),
		})
		if *benchJSON != "" || sess.Archive != nil {
			benchRecords = append(benchRecords, telemetryRecord(r.id, wall, rep, reg))
		}
		if err := exportCSV(r.id, data); err != nil {
			return fmt.Errorf("%s: exporting CSV: %w", r.id, err)
		}
	}
	if len(wanted) > 0 {
		unknown := make([]string, 0, len(wanted))
		for name := range wanted {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return fmt.Errorf("unknown experiment(s): %s", strings.Join(unknown, ", "))
	}
	if len(records) == 0 {
		return fmt.Errorf("no experiments selected by -experiment %q", *exp)
	}
	if *reportPath != "" {
		if err := writeBenchReport(*reportPath, records); err != nil {
			return err
		}
	}
	if *benchJSON != "" || sess.Archive != nil {
		file := &benchcmp.File{
			Schema:    benchcmp.SchemaVersion,
			CreatedAt: time.Now().UTC(),
			GitRev:    archive.GitRev(),
			GoVersion: runtime.Version(),
			MaxProcs:  runtime.GOMAXPROCS(0),
			Config: benchcmp.Config{
				Experiment: want, N: *override, Full: *full, Seed: *seed, Workers: *workers,
			},
			Records: benchRecords,
		}
		if *benchJSON != "" {
			path, err := writeBenchJSON(*benchJSON, file)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "benchmark telemetry written to %s\n", path)
		}
		if sess.Archive != nil {
			id, err := sess.Archive.SaveBench(file)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "benchmark telemetry archived as %s in %s\n", id, sess.Archive.Dir())
		}
	}
	return nil
}

// telemetryRecord folds one experiment's outcome into the benchcmp
// schema: wall and per-phase seconds, deterministic work counters,
// ns per PROCLUS run, and the metric-registry snapshot.
func telemetryRecord(id string, wall time.Duration, rep *experiments.Report, reg *metrics.Registry) benchcmp.Record {
	rec := benchcmp.Record{
		Experiment:  id,
		WallSeconds: wall.Seconds(),
		Runs:        rep.Timing.Runs,
		Counters:    rep.Timing.Counters,
		Metrics:     reg.Snapshot(),
	}
	if t := rep.Timing; t.Runs > 0 {
		rec.PhaseSeconds = map[string]float64{
			"init":    t.Init.Seconds(),
			"iterate": t.Iterate.Seconds(),
			"refine":  t.Refine.Seconds(),
		}
		rec.NsPerOp = float64(t.Total().Nanoseconds()) / float64(t.Runs)
	}
	return rec
}

// writeBenchJSON writes the telemetry file; a directory target (or a
// trailing separator) selects the canonical BENCH_<timestamp>.json
// name inside it.
func writeBenchJSON(target string, file *benchcmp.File) (string, error) {
	path := target
	if info, err := os.Stat(target); (err == nil && info.IsDir()) ||
		strings.HasSuffix(target, string(os.PathSeparator)) {
		path = filepath.Join(target, benchcmp.DefaultFileName(file.CreatedAt))
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := file.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// benchRecord is one experiment's machine-readable timing summary.
// Phase fields cover only time inside PROCLUS runs; WallSeconds covers
// the whole experiment including generation and evaluation.
type benchRecord struct {
	Experiment     string  `json:"experiment"`
	WallSeconds    float64 `json:"wall_seconds"`
	ProclusRuns    int     `json:"proclus_runs"`
	InitSeconds    float64 `json:"init_seconds"`
	IterateSeconds float64 `json:"iterate_seconds"`
	RefineSeconds  float64 `json:"refine_seconds"`
	PhaseSeconds   float64 `json:"phase_seconds"`
}

func writeBenchReport(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// csvWriter is implemented by every experiment's data type.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}
