package main

// Archive subcommands: `runlens ls`, `runlens diff` and `runlens
// trend` consume the append-only run archive the CLIs write with
// -archive, turning single-run analysis into cross-run analysis —
// what changed between two runs, and when a counter first moved
// across the archive's history.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"proclus/internal/benchcmp"
	"proclus/internal/obs"
	"proclus/internal/obs/archive"
)

// openArchive opens the store named by -archive, the flag shared by
// every archive subcommand.
func openArchive(dir string) (*archive.Store, []archive.Manifest, []archive.Problem, error) {
	if dir == "" {
		return nil, nil, nil, fmt.Errorf("-archive is required")
	}
	st, err := archive.Open(dir, archive.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	ms, probs, err := st.List()
	if err != nil {
		return nil, nil, nil, err
	}
	return st, ms, probs, nil
}

// resolveRef maps a run reference to a manifest: either an exact run
// ID, or "@N" counting back from the newest entry (@0 = newest,
// @1 = the one before it).
func resolveRef(ms []archive.Manifest, ref string) (archive.Manifest, error) {
	if strings.HasPrefix(ref, "@") {
		n, err := strconv.Atoi(ref[1:])
		if err != nil || n < 0 {
			return archive.Manifest{}, fmt.Errorf("bad run reference %q (want @0, @1, … or a run ID)", ref)
		}
		if n >= len(ms) {
			return archive.Manifest{}, fmt.Errorf("reference %s is out of range: archive holds %d entries", ref, len(ms))
		}
		return ms[len(ms)-1-n], nil
	}
	for _, m := range ms {
		if m.RunID == ref {
			return m, nil
		}
	}
	return archive.Manifest{}, fmt.Errorf("run %q not found in archive", ref)
}

func printProblems(out io.Writer, probs []archive.Problem) {
	for _, p := range probs {
		fmt.Fprintf(out, "warning: skipping %s: %s\n", p.RunID, p.Err)
	}
}

// runLs lists the archive in deterministic (creation time, run ID)
// order, oldest first, with @N references for diff.
func runLs(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runlens ls", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("archive", "", "run archive directory (written by the CLIs' -archive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ms, probs, err := openArchive(*dir)
	if err != nil {
		return err
	}
	printProblems(out, probs)
	if len(ms) == 0 {
		fmt.Fprintln(out, "archive is empty")
		return nil
	}
	fmt.Fprintf(out, "%-5s %-44s %-14s %-8s %-8s %12s\n",
		"ref", "run", "algorithm", "rev", "seed", "objective")
	for i, m := range ms {
		rev := m.GitRev
		if rev == "" {
			rev = "-"
		}
		fmt.Fprintf(out, "%-5s %-44s %-14s %-8s %-8d %12.4f\n",
			"@"+strconv.Itoa(len(ms)-1-i), m.RunID, m.Algorithm, rev, m.Seed, m.Objective)
	}
	return nil
}

// manifestRecord adapts an archived manifest to the benchcmp record
// schema so CompareRecords can diff two runs. Only the manifest is
// needed: counters, phase seconds and quality all live there, so diff
// works even when an entry's report file is missing or damaged.
func manifestRecord(m archive.Manifest) benchcmp.Record {
	return benchcmp.Record{
		Experiment:   m.Algorithm,
		PhaseSeconds: m.PhaseSeconds,
		Counters:     m.Counters,
		Quality:      m.Quality,
	}
}

// runDiff compares two archived runs' manifests: deterministic work
// counters and quality indices under the tight threshold, phase times
// under the (by default effectively disabled) time threshold. Any
// delta makes the command exit non-zero, so CI can assert that two
// identical-seed runs reproduce exactly.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runlens diff", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir     = fs.String("archive", "", "run archive directory (written by the CLIs' -archive)")
		workThr = fs.Float64("work-threshold", 0, "relative tolerance for counters and quality indices (0 = benchcmp default)")
		timeThr = fs.Float64("time-threshold", 1e12, "relative slowdown beyond which phase times are flagged; the huge default keeps nondeterministic wall time out of the exit code")
		quiet   = fs.Bool("q", false, "suppress the run headers, print only the deltas")
	)
	fs.Usage = func() {
		fmt.Fprint(out, "usage: runlens diff -archive dir <base> <candidate>\n"+
			"  runs are named by ID or by age: @0 is the newest entry, @1 the one before\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("want exactly two runs to compare, got %d", fs.NArg())
	}
	_, ms, probs, err := openArchive(*dir)
	if err != nil {
		return err
	}
	printProblems(out, probs)
	base, err := resolveRef(ms, fs.Arg(0))
	if err != nil {
		return err
	}
	cand, err := resolveRef(ms, fs.Arg(1))
	if err != nil {
		return err
	}
	if !*quiet {
		for _, side := range []struct {
			tag string
			m   archive.Manifest
		}{{"base", base}, {"cand", cand}} {
			rev := side.m.GitRev
			if rev == "" {
				rev = "-"
			}
			fmt.Fprintf(out, "%s  %s  %s rev %s seed %d objective %.4f\n",
				side.tag, side.m.RunID, side.m.Algorithm, rev, side.m.Seed, side.m.Objective)
		}
		if base.Seed != cand.Seed {
			fmt.Fprintln(out, "note: seeds differ; counter deltas reflect the seed change, not necessarily a code change")
		}
		if !jsonEqual(base.Config, cand.Config) {
			fmt.Fprintln(out, "note: configs differ; counter deltas reflect the config change")
		}
		fmt.Fprintln(out)
	}
	rep := benchcmp.CompareRecords(manifestRecord(base), manifestRecord(cand), benchcmp.Options{
		WorkThreshold: *workThr,
		TimeThreshold: *timeThr,
	})
	if err := rep.WriteText(out); err != nil {
		return err
	}
	if n := len(rep.Regressions) + len(rep.Improvements); n > 0 {
		return fmt.Errorf("runs differ: %d metric(s) moved beyond threshold", n)
	}
	return nil
}

func jsonEqual(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return string(a) == string(b)
	}
	ja, _ := json.Marshal(av)
	jb, _ := json.Marshal(bv)
	return string(ja) == string(jb)
}

// counterValues flattens a counter snapshot to (name, value) pairs via
// its JSON encoding, so new counters join the trend without touching
// this tool.
func counterValues(s obs.Snapshot) map[string]float64 {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	vals := map[string]float64{}
	_ = json.Unmarshal(raw, &vals)
	return vals
}

// runTrend prints each deterministic counter's and each phase's values
// across the archive in chronological order, then attributes the
// earliest movement: which counter moved first, and at which run. That
// is usually the root of a work regression — later counters often move
// as a consequence of the first.
func runTrend(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runlens trend", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir     = fs.String("archive", "", "run archive directory (written by the CLIs' -archive)")
		last    = fs.Int("last", 0, "only the newest N entries (0 = all)")
		algo    = fs.String("algorithm", "", "only entries from this algorithm (e.g. proclus)")
		workThr = fs.Float64("work-threshold", 0.01, "relative change in a counter that counts as movement")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ms, probs, err := openArchive(*dir)
	if err != nil {
		return err
	}
	printProblems(out, probs)
	if *algo != "" {
		kept := ms[:0]
		for _, m := range ms {
			if m.Algorithm == *algo {
				kept = append(kept, m)
			}
		}
		ms = kept
	}
	if *last > 0 && len(ms) > *last {
		ms = ms[len(ms)-*last:]
	}
	if len(ms) == 0 {
		fmt.Fprintln(out, "archive holds no matching entries")
		return nil
	}

	fmt.Fprintf(out, "== trend over %d archived run(s) ==\n", len(ms))
	fmt.Fprintf(out, "%-4s %-44s %-14s %12s\n", "run", "id", "algorithm", "objective")
	for i, m := range ms {
		fmt.Fprintf(out, "%-4d %-44s %-14s %12.4f\n", i, m.RunID, m.Algorithm, m.Objective)
	}
	fmt.Fprintln(out)

	// Collect every counter and phase name that appears anywhere, then
	// print each one's value per run in a fixed, sorted order.
	counters := make([]map[string]float64, len(ms))
	nameSet := map[string]bool{}
	phaseSet := map[string]bool{}
	for i, m := range ms {
		counters[i] = counterValues(m.Counters)
		for name := range counters[i] {
			nameSet[name] = true
		}
		for name := range m.PhaseSeconds {
			phaseSet[name] = true
		}
	}
	names := sortedNames(nameSet)
	fmt.Fprintln(out, "== counters ==")
	for _, name := range names {
		row := make([]string, len(ms))
		for i := range ms {
			row[i] = strconv.FormatFloat(counters[i][name], 'g', -1, 64)
		}
		fmt.Fprintf(out, "%-28s %s\n", name, strings.Join(row, "  "))
	}
	fmt.Fprintln(out)
	if phases := sortedNames(phaseSet); len(phases) > 0 {
		fmt.Fprintln(out, "== phase seconds ==")
		for _, name := range phases {
			row := make([]string, len(ms))
			for i, m := range ms {
				row[i] = fmt.Sprintf("%.3f", m.PhaseSeconds[name])
			}
			fmt.Fprintf(out, "%-28s %s\n", name, strings.Join(row, "  "))
		}
		fmt.Fprintln(out)
	}

	// Regression attribution: the first run at which each counter moved
	// beyond threshold relative to the previous run, and among those the
	// earliest mover. Counters that never move are not listed.
	type move struct {
		name     string
		run      int
		from, to float64
	}
	var moves []move
	for _, name := range names {
		for i := 1; i < len(ms); i++ {
			prev, cur := counters[i-1][name], counters[i][name]
			if moved(prev, cur, *workThr) {
				moves = append(moves, move{name: name, run: i, from: prev, to: cur})
				break
			}
		}
	}
	if len(moves) == 0 {
		fmt.Fprintln(out, "no counter moved beyond threshold across the archive")
		return nil
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].run != moves[j].run {
			return moves[i].run < moves[j].run
		}
		return moves[i].name < moves[j].name
	})
	fmt.Fprintln(out, "== first movers ==")
	first := moves[0].run
	for _, mv := range moves {
		marker := ""
		if mv.run == first {
			marker = "  <- moved first"
		}
		fmt.Fprintf(out, "%-28s first moved at run %d (%s): %g -> %g%s\n",
			mv.name, mv.run, ms[mv.run].RunID, mv.from, mv.to, marker)
	}
	return nil
}

// moved reports whether cur deviates from prev beyond the relative
// threshold (with an exact comparison when prev is zero).
func moved(prev, cur, threshold float64) bool {
	if prev == 0 {
		return cur != 0
	}
	ratio := cur / prev
	return ratio > 1+threshold || ratio < 1/(1+threshold)
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
