package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proclus/internal/obs"
	"proclus/internal/obs/archive"
)

// buildArchive writes a three-entry archive with fixed timestamps so
// run IDs — and therefore every subcommand's output — are fully
// deterministic: two identical-seed twins followed by a perturbed run
// whose distance-evaluation count and ARI moved.
func buildArchive(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "runs")
	st, err := archive.Open(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	save := func(n int, evals int64, objective, ari float64) {
		rep := &obs.RunReport{
			Algorithm: "proclus",
			Dataset:   obs.DatasetInfo{Points: 1000, Dims: 20},
			Seed:      7,
			Config:    map[string]int{"k": 5, "l": 3},
			Phases: []obs.PhaseReport{
				{Name: "initialize", Seconds: 0.1},
				{Name: "iterate", Seconds: 0.5},
			},
			Objective: objective,
		}
		rep.Counters.DistanceEvals = evals
		rep.Counters.PointsScanned = 500
		run := archive.FromReport(rep)
		run.CreatedAt = time.Date(2026, 8, 8, 12, 0, n, 0, time.UTC)
		run.GitRev = "abc1234"
		run.Quality = map[string]float64{"ari": ari, "nmi": 0.8}
		if _, err := st.SaveRun(run); err != nil {
			t.Fatal(err)
		}
	}
	save(1, 2000, 12.5, 0.9)
	save(2, 2000, 12.5, 0.9)
	save(3, 2600, 13.0, 0.7)
	return dir
}

// TestArchiveGoldens locks the ls, identical-run diff, and trend
// outputs. Regenerate deliberately with
// `go test ./cmd/runlens -run TestArchiveGoldens -update`.
func TestArchiveGoldens(t *testing.T) {
	dir := buildArchive(t)
	cases := []struct {
		golden string
		args   []string
	}{
		{"golden_ls.txt", []string{"ls", "-archive", dir}},
		{"golden_diff.txt", []string{"diff", "-archive", dir, "@2", "@1"}},
		{"golden_trend.txt", []string{"trend", "-archive", dir}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from golden (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
					buf.Bytes(), want)
			}
		})
	}
}

func TestDiffIdenticalRunsExitZero(t *testing.T) {
	dir := buildArchive(t)
	var buf bytes.Buffer
	if err := run([]string{"diff", "-archive", dir, "@2", "@1"}, &buf); err != nil {
		t.Fatalf("identical-seed runs reported as differing: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("diff output missing the all-clear line:\n%s", buf.String())
	}
}

func TestDiffDetectsCounterAndQualityDeltas(t *testing.T) {
	dir := buildArchive(t)
	var buf bytes.Buffer
	err := run([]string{"diff", "-archive", dir, "@1", "@0"}, &buf)
	if err == nil {
		t.Fatalf("perturbed run diffed clean:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"REGRESSIONS:",
		"counters/distance_evals",
		"quality/ari",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// Wall-time deltas stay out of the exit code by default: only the
	// two deterministic movements are reported.
	if strings.Contains(out, "phase_seconds/") {
		t.Errorf("diff flagged nondeterministic phase time:\n%s", out)
	}
}

func TestDiffRefResolution(t *testing.T) {
	dir := buildArchive(t)
	if err := run([]string{"diff", "-archive", dir, "@9", "@0"}, &bytes.Buffer{}); err == nil {
		t.Error("out-of-range @N accepted")
	}
	if err := run([]string{"diff", "-archive", dir, "no-such-run", "@0"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown run ID accepted")
	}
	if err := run([]string{"diff", "-archive", dir, "@0"}, &bytes.Buffer{}); err == nil {
		t.Error("single operand accepted")
	}
	// Diff by explicit run ID: the first entry's ID is derived from its
	// fixed timestamp.
	id := "20260808T120001.000000000Z-proclus"
	var buf bytes.Buffer
	if err := run([]string{"diff", "-archive", dir, id, "@1"}, &buf); err != nil {
		t.Errorf("diff by run ID failed: %v\n%s", err, buf.String())
	}
}

func TestTrendFirstMover(t *testing.T) {
	dir := buildArchive(t)
	var buf bytes.Buffer
	if err := run([]string{"trend", "-archive", dir, "-algorithm", "proclus"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "distance_evals") || !strings.Contains(out, "<- moved first") {
		t.Errorf("trend missing first-mover attribution:\n%s", out)
	}
	if !strings.Contains(out, "first moved at run 2") {
		t.Errorf("trend attributes the move to the wrong run:\n%s", out)
	}
	// points_scanned never moves, so it must not appear among movers.
	if strings.Contains(out, "points_scanned first moved") {
		t.Errorf("trend flagged a flat counter:\n%s", out)
	}
}

func TestArchiveCommandsRequireArchive(t *testing.T) {
	for _, sub := range []string{"ls", "diff", "trend"} {
		args := []string{sub}
		if sub == "diff" {
			args = append(args, "@0", "@1")
		}
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("runlens %s without -archive accepted", sub)
		}
	}
}
