// Command runlens analyzes recorded observability artifacts — the
// JSON-lines event traces written by -trace and the time-series
// snapshots written by -series — and prints what they say about a
// run's convergence: a run summary, a per-restart convergence table,
// the critical path through the span hierarchy, the straggler blocks
// of each streamed pass, any stalls the watchdog flagged, and the
// recorded series.
//
// With a run archive (written by the CLIs' -archive flag) it also
// analyzes runs *over time*: `runlens ls` lists the archive, `runlens
// diff` compares two archived runs' deterministic counters and quality
// indices (exiting non-zero when they differ), and `runlens trend`
// tracks every counter across the archive and attributes which one
// moved first.
//
// Usage:
//
//	runlens trace.jsonl
//	runlens -top 5 trace.jsonl
//	runlens -series series.json
//	runlens -series series.json trace.jsonl
//	runlens ls -archive runs/
//	runlens diff -archive runs/ @1 @0
//	runlens diff -archive runs/ 20260808T120001.000000000Z-proclus @0
//	runlens trend -archive runs/ -algorithm proclus
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"proclus/internal/obs"
	"proclus/internal/obs/series"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "runlens: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "ls":
			return runLs(args[1:], out)
		case "diff":
			return runDiff(args[1:], out)
		case "trend":
			return runTrend(args[1:], out)
		}
	}
	fs := flag.NewFlagSet("runlens", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		seriesPath = fs.String("series", "", "time-series snapshot JSON to analyze (written by -series)")
		top        = fs.Int("top", 3, "straggler blocks to list per streamed pass")
	)
	fs.Usage = func() {
		fmt.Fprint(out, "usage: runlens [-series snapshot.json] [-top n] [trace.jsonl]\n"+
			"       runlens ls|diff|trend -archive dir [args]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracePath := fs.Arg(0)
	if tracePath == "" && *seriesPath == "" {
		fs.Usage()
		return fmt.Errorf("nothing to analyze: pass a trace file, -series, or both")
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one trace file, got %d", fs.NArg())
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		err = analyzeTrace(out, f, *top)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", tracePath, err)
		}
	}
	if *seriesPath != "" {
		snap, err := series.ReadSnapshotFile(*seriesPath)
		if err != nil {
			return err
		}
		analyzeSeries(out, snap)
	}
	return nil
}

// traceLine is one record of a -trace file: the event plus the tracer's
// millisecond offset.
type traceLine struct {
	TMS float64 `json:"t_ms"`
	obs.Event
}

// trace is the parsed event stream plus the aggregates the report
// sections read.
type trace struct {
	events []traceLine
	spans  *obs.SpanBuilder
	stalls []obs.Event
}

func readTrace(r io.Reader) (*trace, error) {
	tr := &trace{spans: obs.NewSpanBuilder()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec traceLine
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Type == "" {
			return nil, fmt.Errorf("line %d: record has no event type", line)
		}
		tr.events = append(tr.events, rec)
		tr.spans.Add(rec.TMS/1e3, rec.Event)
		if rec.Type == obs.EvStall {
			tr.stalls = append(tr.stalls, rec.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.events) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return tr, nil
}

func analyzeTrace(out io.Writer, r io.Reader, top int) error {
	tr, err := readTrace(r)
	if err != nil {
		return err
	}
	printSummary(out, tr)
	printConvergence(out, tr)
	printCriticalPath(out, tr.spans)
	printStragglers(out, tr.spans, top)
	printStalls(out, tr.stalls)
	return nil
}

// restartStats accumulates one restart's convergence numbers.
type restartStats struct {
	restart   int
	iters     int
	accepted  int
	best      float64
	hasBest   bool
	seconds   float64
	completed bool
}

func printSummary(out io.Writer, tr *trace) {
	algorithm, phases := "", 0
	var points, dims, clusters, outliers, iterations int
	var objective, runSeconds float64
	stalled := len(tr.stalls) > 0
	ended := false
	for _, rec := range tr.events {
		switch rec.Type {
		case obs.EvRunStart:
			algorithm, points, dims = rec.Algorithm, rec.Points, rec.Dims
		case obs.EvPhaseEnd:
			phases++
		case obs.EvIteration:
			iterations++
		case obs.EvRunEnd:
			objective, clusters, outliers = rec.Objective, rec.Clusters, rec.Outliers
			runSeconds = rec.Seconds
			ended = true
		}
	}
	if algorithm == "" {
		algorithm = "unknown"
	}
	span := tr.events[len(tr.events)-1].TMS - tr.events[0].TMS
	fmt.Fprintf(out, "== run summary ==\n")
	fmt.Fprintf(out, "algorithm    %s\n", algorithm)
	if points > 0 {
		fmt.Fprintf(out, "dataset      %d points x %d dims\n", points, dims)
	}
	fmt.Fprintf(out, "events       %d over %.3fs (%d phases closed)\n",
		len(tr.events), span/1e3, phases)
	if iterations > 0 {
		fmt.Fprintf(out, "iterations   %d\n", iterations)
	}
	if ended {
		fmt.Fprintf(out, "finished     yes: objective %.4f, %d clusters, %d outliers in %.3fs\n",
			objective, clusters, outliers, runSeconds)
	} else {
		fmt.Fprintf(out, "finished     no (trace ends before run_end)\n")
	}
	if stalled {
		fmt.Fprintf(out, "stalled      yes (%d stall events, see below)\n", len(tr.stalls))
	}
	fmt.Fprintln(out)
}

func printConvergence(out io.Writer, tr *trace) {
	byRestart := map[int]*restartStats{}
	var order []int
	get := func(r int) *restartStats {
		rs := byRestart[r]
		if rs == nil {
			rs = &restartStats{restart: r}
			byRestart[r] = rs
			order = append(order, r)
		}
		return rs
	}
	for _, rec := range tr.events {
		switch rec.Type {
		case obs.EvIteration:
			rs := get(rec.Restart)
			rs.iters++
			if rec.Improved {
				rs.accepted++
			}
			if best := rec.Best; !rs.hasBest || best < rs.best {
				rs.best, rs.hasBest = best, true
			}
		case obs.EvRestartEnd:
			rs := get(rec.Restart)
			rs.best, rs.hasBest = rec.Objective, true
			rs.iters = rec.Iteration
			rs.seconds = rec.Seconds
			rs.completed = true
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Ints(order)
	fmt.Fprintf(out, "== convergence ==\n")
	fmt.Fprintf(out, "%-8s %8s %9s %9s %12s %9s\n",
		"restart", "iters", "accepted", "rejected", "best", "seconds")
	for _, r := range order {
		rs := byRestart[r]
		best := "-"
		if rs.hasBest {
			best = fmt.Sprintf("%.4f", rs.best)
		}
		secs := "-"
		if rs.completed {
			secs = fmt.Sprintf("%.3f", rs.seconds)
		}
		fmt.Fprintf(out, "%-8d %8d %9d %9d %12s %9s\n",
			r, rs.iters, rs.accepted, rs.iters-rs.accepted, best, secs)
	}
	fmt.Fprintln(out)
}

func printCriticalPath(out io.Writer, b *obs.SpanBuilder) {
	path := b.CriticalPath()
	if len(path) == 0 {
		return
	}
	total := path[0].Duration()
	fmt.Fprintf(out, "== critical path ==\n")
	for depth, s := range path {
		share := 100.0
		if total > 0 {
			share = 100 * s.Duration() / total
		}
		fmt.Fprintf(out, "%s%-24s %9.3fs %5.1f%%\n",
			strings.Repeat("  ", depth), spanLabel(s), s.Duration(), share)
	}
	fmt.Fprintln(out)
}

func spanLabel(s *obs.Span) string {
	name := s.Name
	switch s.Kind {
	case obs.SpanIteration:
		name = fmt.Sprintf("iteration %d", s.Iteration)
	case obs.SpanBlock:
		name = fmt.Sprintf("block %d", s.Block)
	}
	return name
}

// blockRec is one block span located within its pass and phase.
type blockRec struct {
	phase, pass   string
	block, points int
	seconds       float64
}

func printStragglers(out io.Writer, b *obs.SpanBuilder, top int) {
	root := b.Root()
	if root == nil || top <= 0 {
		return
	}
	byPass := map[string][]blockRec{}
	var passOrder []string
	phase := ""
	root.Walk(func(s *obs.Span) {
		switch s.Kind {
		case obs.SpanPhase:
			phase = strings.TrimPrefix(s.Name, "phase:")
		case obs.SpanPass:
			pass := strings.TrimPrefix(s.Name, "pass:")
			key := phase + "/" + pass
			if _, ok := byPass[key]; !ok {
				byPass[key] = nil
				passOrder = append(passOrder, key)
			}
			for _, c := range s.Children {
				if c.Kind != obs.SpanBlock {
					continue
				}
				byPass[key] = append(byPass[key], blockRec{
					phase: phase, pass: pass,
					block: c.Block, points: c.Points, seconds: c.Duration(),
				})
			}
		}
	})
	if len(passOrder) == 0 {
		return
	}
	fmt.Fprintf(out, "== straggler blocks ==\n")
	for _, key := range passOrder {
		blocks := byPass[key]
		if len(blocks) == 0 {
			continue
		}
		var totalSecs float64
		var totalPts int
		for _, b := range blocks {
			totalSecs += b.seconds
			totalPts += b.points
		}
		fmt.Fprintf(out, "pass %-20s %4d blocks, %8d points, %8.3fs total, %8.4fs mean\n",
			key, len(blocks), totalPts, totalSecs, totalSecs/float64(len(blocks)))
		// Slowest first; ties break on block index so output is stable.
		sort.Slice(blocks, func(i, j int) bool {
			if blocks[i].seconds != blocks[j].seconds {
				return blocks[i].seconds > blocks[j].seconds
			}
			return blocks[i].block < blocks[j].block
		})
		n := top
		if n > len(blocks) {
			n = len(blocks)
		}
		for _, b := range blocks[:n] {
			ratio := 1.0
			if mean := totalSecs / float64(len(blocks)); mean > 0 {
				ratio = b.seconds / mean
			}
			fmt.Fprintf(out, "  block %-6d %8d points %9.4fs  %5.1fx mean\n",
				b.block, b.points, b.seconds, ratio)
		}
	}
	fmt.Fprintln(out)
}

func printStalls(out io.Writer, stalls []obs.Event) {
	if len(stalls) == 0 {
		return
	}
	fmt.Fprintf(out, "== stalls ==\n")
	for _, e := range stalls {
		switch e.Reason {
		case obs.StallDeadline:
			fmt.Fprintf(out, "deadline: no progress events for %.1fs\n", e.Seconds)
		default:
			fmt.Fprintf(out, "no_improve: restart %d stuck for %.0f iterations (at iteration %d)\n",
				e.Restart, e.Seconds, e.Iteration)
		}
	}
	fmt.Fprintln(out)
}

func analyzeSeries(out io.Writer, snap series.StoreSnapshot) {
	if len(snap) == 0 {
		fmt.Fprintf(out, "== series ==\n(empty snapshot)\n")
		return
	}
	fmt.Fprintf(out, "== series ==\n")
	for _, s := range snap {
		if len(s.Points) == 0 {
			continue
		}
		min, max := s.Points[0].V, s.Points[0].V
		for _, p := range s.Points[1:] {
			if p.V < min {
				min = p.V
			}
			if p.V > max {
				max = p.V
			}
		}
		last := s.Points[len(s.Points)-1]
		kept := fmt.Sprintf("%d", s.Total)
		if s.Total > int64(len(s.Points)) {
			kept = fmt.Sprintf("last %d of %d", len(s.Points), s.Total)
		}
		fmt.Fprintf(out, "%-44s %14s points  last(x=%g) %.6g  min %.6g  max %.6g\n",
			seriesLabel(s), kept, last.X, last.V, min, max)
	}
}

func seriesLabel(s series.SeriesSnapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}
