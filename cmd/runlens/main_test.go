package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden summary from the current analyzer output")

// TestGoldenSummary locks the analyzer's full report for the checked-in
// golden trace and series snapshot. Regenerate deliberately with
// `go test ./cmd/runlens -run TestGoldenSummary -update` after an
// intentional output change.
func TestGoldenSummary(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-series", filepath.Join("testdata", "golden_series.json"),
		filepath.Join("testdata", "golden_trace.jsonl"),
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_summary.txt")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestGoldenSummarySections(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "golden_trace.jsonl")}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== run summary ==",
		"== convergence ==",
		"== critical path ==",
		"== straggler blocks ==",
		"== stalls ==",
		"algorithm    proclus",
		"no_improve: restart 2 stuck for 2 iterations (at iteration 3)",
		"phase:iterate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPartialTrace(t *testing.T) {
	// A trace cut mid-run must still analyze: summary reports the run
	// unfinished, convergence covers what arrived.
	full, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(full)), "\n")
	partial := strings.Join(lines[:10], "\n") + "\n"
	path := filepath.Join(t.TempDir(), "partial.jsonl")
	if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "finished     no") {
		t.Errorf("partial trace not reported as unfinished:\n%s", buf.String())
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run([]string{"a.jsonl", "b.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Error("two trace files accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("malformed trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Error("empty trace accepted")
	}
}
