package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/dataset"
)

func writeSample(t *testing.T, ext string) string {
	t.Helper()
	ds, err := dataset.FromRows([][]float64{
		{1, 10}, {2, 20}, {3, 30}, {4, 40},
	}, []int{0, 0, 1, -1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s"+ext)
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBinaryStreamed(t *testing.T) {
	path := writeSample(t, ".bin")
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"4 points × 2 dims (streamed)", "min", "stddev", "ground-truth labels", "outliers"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}
	// min of dim0 is 1, max 4.
	if !strings.Contains(got, "1.0000") || !strings.Contains(got, "4.0000") {
		t.Fatalf("stats wrong:\n%s", got)
	}
}

func TestRunCSVWithLabels(t *testing.T) {
	path := writeSample(t, ".csv")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-labels"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"ground-truth labels", "outliers", "cluster 0"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.bin")}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunReport(t *testing.T) {
	path := writeSample(t, ".bin")
	report := filepath.Join(t.TempDir(), "stats.json")
	var sb strings.Builder
	if err := run([]string{"-in", path, "-report", report}, &sb); err != nil {
		t.Fatal(err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithm string `json:"algorithm"`
		Dataset   struct {
			Points int `json:"points"`
			Dims   int `json:"dims"`
		} `json:"dataset"`
	}
	if err := json.Unmarshal(rep, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if doc.Algorithm != "dsstat" || doc.Dataset.Points != 4 || doc.Dataset.Dims != 2 {
		t.Errorf("report fields: %+v", doc)
	}
}
