// Command dsstat inspects a dataset file: shape, per-dimension
// statistics, and (for labeled data) the cluster-size histogram. Binary
// files are processed in one streaming pass without loading the data
// into memory, mirroring the disk-resident access pattern the PROCLUS
// paper assumes; CSV files are loaded normally.
//
// Usage:
//
//	dsstat -in data.bin
//	dsstat -in data.csv -labels
//	dsstat -in data.bin -report stats.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"proclus/internal/dataset"
	"proclus/internal/obs"
	"proclus/internal/obs/cliflags"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dsstat: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("dsstat", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing label column")
	)
	// Inspection is a single streaming pass, so the live monitoring
	// server is not offered; the remaining observability surface is
	// shared.
	obsFlags := cliflags.Register(fs, cliflags.WithoutServe())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	sess.Observe(obs.Event{Type: obs.EvRunStart, Algorithm: "dsstat"})
	start := time.Now()
	var n, dims int
	if strings.HasSuffix(*in, ".csv") {
		n, dims, err = statCSV(out, *in, *hasLabels)
	} else {
		n, dims, err = statBinary(out, *in)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	sess.Observe(obs.Event{
		Type: obs.EvRunEnd, Algorithm: "dsstat",
		Points: n, Dims: dims, Seconds: elapsed.Seconds(),
	})
	if obsFlags.Report != "" {
		rep := obs.RunReport{
			Algorithm: "dsstat",
			Dataset: obs.DatasetInfo{
				Points: n, Dims: dims, Labeled: *hasLabels, Source: *in,
			},
			TotalSeconds: elapsed.Seconds(),
		}
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	return nil
}

func statBinary(out io.Writer, path string) (n, dims int, err error) {
	n, stats, err := dataset.ScanStats(path)
	if err != nil {
		return 0, 0, err
	}
	fmt.Fprintf(out, "%s: %d points × %d dims (streamed)\n\n", path, n, len(stats))
	printStats(out, stats)
	if counts, err := dataset.ScanLabelHistogram(path); err == nil {
		printLabelHistogram(out, counts)
	}
	return n, len(stats), nil
}

func printLabelHistogram(out io.Writer, counts map[int]int) {
	labels := make([]int, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	fmt.Fprintln(out, "\nground-truth labels:")
	for _, l := range labels {
		name := fmt.Sprintf("cluster %d", l)
		if l == dataset.Outlier {
			name = "outliers"
		}
		fmt.Fprintf(out, "  %-10s %8d points\n", name, counts[l])
	}
}

func statCSV(out io.Writer, path string, hasLabels bool) (n, dims int, err error) {
	ds, err := dataset.LoadFile(path, hasLabels)
	if err != nil {
		return 0, 0, err
	}
	fmt.Fprintf(out, "%s: %d points × %d dims\n\n", path, ds.Len(), ds.Dims())
	min, max := ds.Bounds()
	stats := make([]dataset.ColumnStats, ds.Dims())
	sums := make([]float64, ds.Dims())
	ds.Each(func(_ int, p []float64) {
		for j, v := range p {
			sums[j] += v
		}
	})
	for j := range stats {
		stats[j].Min, stats[j].Max = min[j], max[j]
		stats[j].Mean = sums[j] / float64(ds.Len())
	}
	ssq := make([]float64, ds.Dims())
	ds.Each(func(_ int, p []float64) {
		for j, v := range p {
			d := v - stats[j].Mean
			ssq[j] += d * d
		}
	})
	for j := range stats {
		if ds.Len() > 1 {
			stats[j].StdDev = math.Sqrt(ssq[j] / float64(ds.Len()-1))
		}
	}
	printStats(out, stats)
	if ds.Labeled() {
		counts := map[int]int{}
		for _, l := range ds.Labels() {
			counts[l]++
		}
		labels := make([]int, 0, len(counts))
		for l := range counts {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		fmt.Fprintln(out, "\nground-truth labels:")
		for _, l := range labels {
			name := fmt.Sprintf("cluster %d", l)
			if l == dataset.Outlier {
				name = "outliers"
			}
			fmt.Fprintf(out, "  %-10s %8d points\n", name, counts[l])
		}
	}
	return ds.Len(), ds.Dims(), nil
}

func printStats(out io.Writer, stats []dataset.ColumnStats) {
	fmt.Fprintf(out, "%6s %14s %14s %14s %14s\n", "dim", "min", "max", "mean", "stddev")
	for j, s := range stats {
		fmt.Fprintf(out, "%6d %14.4f %14.4f %14.4f %14.4f\n", j, s.Min, s.Max, s.Mean, s.StdDev)
	}
}
