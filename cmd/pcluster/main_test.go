package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/synth"
)

func writeData(t *testing.T) string {
	t.Helper()
	ds, _, err := synth.Generate(synth.Config{
		N: 1000, Dims: 8, K: 3, FixedDims: 3, MinSizeFraction: 0.2,
		OutlierFraction: -1, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestListNames(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, name := range []string{"clique", "kmedoids", "orclus", "proclus"} {
		if !strings.Contains(got, name) {
			t.Errorf("-list output missing %q:\n%s", name, got)
		}
	}
}

// TestRunEachAlgorithm drives every registered algorithm through the
// umbrella CLI with its own parameter set and checks the generic output
// plus the quality indices the labeled input enables.
func TestRunEachAlgorithm(t *testing.T) {
	path := writeData(t)
	cases := []struct {
		algo string
		args []string
	}{
		{"proclus", []string{"-k", "3", "-l", "3"}},
		{"clique", []string{"-tau", "0.02", "-mdl", "-highest"}},
		{"orclus", []string{"-k", "3", "-l", "3"}},
		{"kmedoids", []string{"-k", "3"}},
	}
	for _, tc := range cases {
		var sb strings.Builder
		args := append([]string{"-algo", tc.algo, "-in", path}, tc.args...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		got := sb.String()
		for _, want := range []string{tc.algo + ":", "clusters:", "ARI"} {
			if !strings.Contains(got, want) {
				t.Errorf("%s output missing %q:\n%s", tc.algo, want, got)
			}
		}
	}
}

// TestRejectsUnsupportedCombos pins the umbrella contract: a flag the
// selected algorithm does not support fails with an error naming it.
func TestRejectsUnsupportedCombos(t *testing.T) {
	path := writeData(t)
	cases := []struct {
		name string
		args []string
	}{
		{"clique", []string{"-algo", "clique", "-in", path, "-k", "3"}},
		{"clique", []string{"-algo", "clique", "-in", path, "-sketch-dims", "4"}},
		{"orclus", []string{"-algo", "orclus", "-in", path, "-k", "3", "-l", "2", "-stream"}},
		{"orclus", []string{"-algo", "orclus", "-in", path, "-k", "3", "-l", "2", "-kernel", "naive"}},
		{"kmedoids", []string{"-algo", "kmedoids", "-in", path, "-k", "3", "-workers", "4"}},
		{"proclus", []string{"-algo", "proclus", "-in", path, "-k", "3", "-l", "3", "-xi", "8"}},
		{"proclus", []string{"-algo", "proclus", "-in", path, "-k", "3", "-l", "3", "-restarts", "2"}},
	}
	for _, tc := range cases {
		var sb strings.Builder
		err := run(tc.args, &sb)
		if err == nil {
			t.Errorf("%v accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%v: error %q does not name %s", tc.args, err, tc.name)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-algo", "dbscan", "-in", path}, &sb); err == nil ||
		!strings.Contains(err.Error(), "proclus") {
		t.Errorf("unknown algorithm error should list the registered names, got %v", err)
	}
}

func TestReportAssignArchive(t *testing.T) {
	path := writeData(t)
	dir := t.TempDir()
	report := filepath.Join(dir, "run.json")
	assign := filepath.Join(dir, "assign.csv")
	arch := filepath.Join(dir, "runs")
	var sb strings.Builder
	err := run([]string{"-algo", "kmedoids", "-in", path, "-k", "3",
		"-report", report, "-assign", assign, "-archive", arch}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithm string `json:"algorithm"`
		Clusters  []struct {
			Size int `json:"size"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(rep, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if doc.Algorithm != "kmedoids" || len(doc.Clusters) != 3 {
		t.Errorf("report fields: %+v", doc)
	}
	as, err := os.ReadFile(assign)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(as), "point,cluster\n") {
		t.Errorf("assignment CSV header missing:\n%.80s", as)
	}
	entries, err := os.ReadDir(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("-archive left the archive directory empty")
	}
}

// TestStreamedProclus exercises the out-of-core path through the
// umbrella CLI; labeled quality still works via the label scan.
func TestStreamedProclus(t *testing.T) {
	path := writeData(t)
	var sb strings.Builder
	err := run([]string{"-algo", "proclus", "-in", path, "-k", "3", "-l", "3",
		"-stream", "-block-points", "256"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ARI") {
		t.Errorf("streamed labeled run missing quality indices:\n%s", sb.String())
	}
}

func TestStreamedCliqueSkipsQuality(t *testing.T) {
	path := writeData(t)
	var sb strings.Builder
	err := run([]string{"-algo", "clique", "-in", path, "-tau", "0.02",
		"-mdl", "-highest", "-stream"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "quality: skipped") {
		t.Errorf("streamed clique should skip quality:\n%s", sb.String())
	}
	if err := run([]string{"-algo", "clique", "-in", path, "-tau", "0.02",
		"-stream", "-assign", filepath.Join(t.TempDir(), "a.csv")}, &sb); err == nil {
		t.Error("-assign on a streamed clique fit accepted")
	}
}

func TestRequiredFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-algo", "proclus"}, &sb); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "x.bin"}, &sb); err == nil {
		t.Error("missing -algo accepted")
	}
}
