// Command pcluster is the umbrella CLI over the algorithm registry: one
// binary that runs any registered clustering algorithm — PROCLUS,
// CLIQUE, ORCLUS or the full-dimensional k-medoids baseline — with one
// shared flag surface. Flags an algorithm does not support (streaming
// ORCLUS, a sketch tier on CLIQUE, a worker budget on the serial
// k-medoids descent, another algorithm's parameters) are rejected by
// the registry with a clear error instead of being silently ignored.
//
// Usage:
//
//	pcluster -list
//	pcluster -algo proclus  -in data.bin -k 5 -l 7
//	pcluster -algo proclus  -in data.bin -k 5 -l 7 -stream -sketch-dims 0 -kernel pruned
//	pcluster -algo clique   -in data.csv -labels -xi 10 -tau 0.005 -mdl
//	pcluster -algo orclus   -in data.bin -k 3 -l 2 -outliers
//	pcluster -algo kmedoids -in data.csv -labels -k 5
//	pcluster -algo proclus  -in data.bin -k 5 -l 7 -report run.json -archive runs/
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"proclus/internal/core"
	"proclus/internal/dataset"
	"proclus/internal/eval"
	"proclus/internal/obs/cliflags"
	"proclus/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pcluster: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("pcluster", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		algo      = fs.String("algo", "", "algorithm to run (see -list); required")
		list      = fs.Bool("list", false, "list the registered algorithms and exit")
		in        = fs.String("in", "", "input dataset (.csv or binary); required")
		hasLabels = fs.Bool("labels", false, "CSV input has a trailing ground-truth label column")

		// Shared knobs. Zero means "not set": algorithms that do not
		// take a knob reject any non-zero value, so nothing is silently
		// ignored.
		k        = fs.Int("k", 0, "number of clusters (proclus, orclus, kmedoids)")
		l        = fs.Int("l", 0, "subspace dimensionality per cluster (proclus, orclus)")
		seed     = fs.Uint64("seed", 1, "random seed")
		workers  = fs.Int("workers", 0, "goroutine budget for parallel passes (0 = GOMAXPROCS); results are identical for any value")
		stream   = fs.Bool("stream", false, "cluster the input out of core (binary input; streaming-capable algorithms only)")
		blockPts = fs.Int("block-points", 0, "points per streamed block (0 = default); only with -stream")
		skDims   = fs.Int("sketch-dims", 0, "random-projection sketch dimensionality (proclus only; 0 = off)")
		skMode   = fs.String("sketch-mode", "prune", "sketch tier mode: prune or approx")
		kernel   = fs.String("kernel", "pruned", "exact distance-kernel tier: pruned or naive (proclus only)")

		// CLIQUE grid parameters.
		xi      = fs.Int("xi", 0, "clique: intervals per dimension ξ (0 = default)")
		tau     = fs.Float64("tau", 0, "clique: density threshold τ as a fraction of N (0 = default)")
		maxDims = fs.Int("maxdims", 0, "clique: stop the subspace search at this dimensionality (0 = unlimited)")
		fixed   = fs.Int("fixeddims", 0, "clique: report clusters only at exactly this dimensionality")
		maximal = fs.Bool("maximal", false, "clique: report only maximal dense subspaces")
		highest = fs.Bool("highest", false, "clique: report only the highest dimensionality reached")
		mdl     = fs.Bool("mdl", false, "clique: enable MDL subspace pruning")

		// ORCLUS loop parameters.
		k0Factor = fs.Int("k0factor", 0, "orclus: initial-seed multiplier k0 = k0factor·k (0 = default)")
		alpha    = fs.Float64("alpha", 0, "orclus: cluster-count decay factor per merge round (0 = default)")
		outliers = fs.Bool("outliers", false, "orclus: discard points outside every sphere of influence")

		// k-medoids descent parameters.
		maxNb    = fs.Int("max-neighbors", 0, "kmedoids: neighbor swaps examined per local-search step (0 = default)")
		restarts = fs.Int("restarts", 0, "kmedoids: independent descents, best kept (0 = default)")

		assignOut = fs.String("assign", "", "optional path for a point→cluster assignment CSV")
	)
	obsFlags := cliflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range registry.Names() {
			a, err := registry.Get(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %s\n", name, capsSummary(a.Caps()))
		}
		return nil
	}
	if *algo == "" || *in == "" {
		fs.Usage()
		return fmt.Errorf("-algo and -in are required (or -list)")
	}
	sketchMode, err := core.ParseSketchMode(*skMode)
	if err != nil {
		return err
	}
	kernelMode, err := core.ParseKernelMode(*kernel)
	if err != nil {
		return err
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	cfg := registry.Config{
		K: *k, L: *l, Seed: *seed, Workers: *workers,
		Sketch: core.SketchConfig{Dims: *skDims, Mode: sketchMode},
		Kernel: kernelMode,
		Clique: registry.CliqueParams{
			Xi: *xi, Tau: *tau, MaxDims: *maxDims, FixedDims: *fixed,
			ReportMaximal: *maximal, ReportHighest: *highest, MDLPruning: *mdl,
		},
		Orclus: registry.OrclusParams{
			K0Factor: *k0Factor, Alpha: *alpha, HandleOutliers: *outliers,
		},
		Medoid:   registry.MedoidParams{MaxNeighbors: *maxNb, Restarts: *restarts},
		Observer: sess.Observer, Metrics: sess.Metrics, Series: sess.Series,
	}

	var (
		src     registry.Source
		labels  []int
		labeled bool
	)
	if *stream {
		if strings.HasSuffix(strings.ToLower(*in), ".csv") {
			return fmt.Errorf("-stream requires the binary dataset format (convert with datagen or dsstat)")
		}
		fsrc, err := dataset.OpenFileSource(*in, *blockPts)
		if err != nil {
			return err
		}
		src.Stream = fsrc
		labeled = fsrc.Labeled()
		if labeled {
			if labels, err = dataset.ScanLabels(*in); err != nil {
				return err
			}
		}
	} else {
		ds, err := dataset.LoadFile(*in, *hasLabels)
		if err != nil {
			return err
		}
		src.Dataset = ds
		labeled = ds.Labeled()
		if labeled {
			labels = ds.Labels()
		}
	}

	ctx, cancel := sess.Context(context.Background())
	defer cancel()
	start := time.Now()
	m, err := registry.Fit(ctx, *algo, src, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	rep := m.Report()
	rep.Dataset.Source = *in
	rep.Dataset.Labeled = labeled

	fmt.Fprintf(out, "%s: %d points × %d dims — %s\n",
		m.Algorithm(), rep.Dataset.Points, rep.Dataset.Dims, elapsed.Round(time.Millisecond))
	if rep.Objective != 0 {
		fmt.Fprintf(out, "objective: %.4f\n", rep.Objective)
	}
	fmt.Fprintf(out, "clusters: %d\n", m.NumClusters())
	for _, cl := range rep.Clusters {
		fmt.Fprintf(out, "  cluster %3d: %6d points\n", cl.ID+1, cl.Size)
	}
	if rep.Outliers > 0 {
		fmt.Fprintf(out, "  outliers: %d\n", rep.Outliers)
	}

	var quality map[string]float64
	as := m.Assignments()
	if labeled && as != nil {
		quality = map[string]float64{}
		if ari, err := eval.AdjustedRandIndex(labels, as); err == nil {
			fmt.Fprintf(out, "ARI: %.3f", ari)
			quality["ari"] = ari
		}
		if nmi, err := eval.NormalizedMutualInfo(labels, as); err == nil {
			fmt.Fprintf(out, "   NMI: %.3f", nmi)
			quality["nmi"] = nmi
		}
		fmt.Fprintln(out)
	} else if labeled {
		fmt.Fprintln(out, "quality: skipped (streamed fit holds no per-point assignments)")
	}

	if *assignOut != "" {
		if as == nil {
			return fmt.Errorf("-assign: %s holds no per-point assignments for this source (streamed fit)", m.Algorithm())
		}
		if err := writeAssignments(*assignOut, as); err != nil {
			return err
		}
		fmt.Fprintf(out, "assignments written to %s\n", *assignOut)
	}
	if obsFlags.Report != "" {
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	_, err = sess.ArchiveRun(rep, quality)
	return err
}

// capsSummary renders an algorithm's capability set for -list.
func capsSummary(c registry.Caps) string {
	var parts []string
	add := func(ok bool, label string) {
		if ok {
			parts = append(parts, label)
		}
	}
	add(c.TakesK, "k")
	add(c.TakesL, "l")
	add(c.Stream, "stream")
	add(c.Sketch, "sketch")
	add(c.Kernel, "kernel")
	add(c.Series, "series")
	add(c.Workers, "workers")
	add(c.CliqueParams, "xi/tau")
	add(c.OrclusParams, "k0factor/alpha")
	add(c.MedoidParams, "max-neighbors/restarts")
	return strings.Join(parts, " ")
}

// writeAssignments writes the assignment CSV atomically, mirroring the
// proclus CLI: rows land in a temp file that replaces path only after a
// complete write.
func writeAssignments(path string, assignments []int) (retErr error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if _, err := f.WriteString("point,cluster\n"); err != nil {
		return err
	}
	for i, a := range assignments {
		if _, err := f.WriteString(strconv.Itoa(i) + "," + strconv.Itoa(a) + "\n"); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
