// Command datagen generates synthetic projected-clustering datasets per
// §4.1 of the PROCLUS paper and writes them to CSV or binary files.
//
// Usage:
//
//	datagen -n 100000 -dims 20 -k 5 -avgdims 7 -seed 1 -o data.csv
//	datagen -n 100000 -dims 20 -k 5 -dimcounts 2,2,3,6,7 -o case2.bin
//	datagen -oriented -n 10000 -dims 10 -k 3 -fixeddims 2 -o rotated.bin
//	datagen -n 100000 -dims 20 -k 5 -avgdims 7 -o data.bin -report gen.json
//
// The output is labeled: the final CSV column (and the binary label
// block) holds the generating cluster index, -1 for outliers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"proclus/internal/dataset"
	"proclus/internal/obs"
	"proclus/internal/obs/cliflags"
	"proclus/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		n         = fs.Int("n", 100000, "number of points (including outliers)")
		dims      = fs.Int("dims", 20, "dimensionality of the space")
		k         = fs.Int("k", 5, "number of clusters")
		avgDims   = fs.Float64("avgdims", 0, "Poisson mean of cluster dimensionality (paper's l)")
		fixedDims = fs.Int("fixeddims", 0, "exact dimensionality for every cluster (overrides -avgdims)")
		dimCounts = fs.String("dimcounts", "", "comma-separated per-cluster dimensionalities (overrides both)")
		outliers  = fs.Float64("outliers", 0.05, "outlier fraction")
		minShare  = fs.Float64("minshare", 0, "minimum cluster size as a fraction of cluster points (0 = raw Exp(1) sizes)")
		oriented  = fs.Bool("oriented", false, "generate arbitrarily oriented clusters (-fixeddims = tight directions)")
		seed      = fs.Uint64("seed", 1, "random seed")
		outPath   = fs.String("o", "", "output path (.csv for CSV, anything else for binary); required")
	)
	// Generation is a single short pass, so the live monitoring server is
	// not offered; the remaining observability surface is shared.
	obsFlags := cliflags.Register(fs, cliflags.WithoutServe())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-o is required")
	}
	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	start := time.Now()
	sess.Observe(obs.Event{
		Type: obs.EvRunStart, Algorithm: "datagen", Points: *n, Dims: *dims,
	})

	var ds *dataset.Dataset
	var describe func(io.Writer)
	var cfgEcho any
	if *oriented {
		cfg := synth.OrientedConfig{
			N: *n, Dims: *dims, K: *k, L: *fixedDims,
			OutlierFraction: *outliers, Seed: *seed,
		}
		if *outliers == 0 {
			cfg.OutlierFraction = -1
		}
		cfgEcho = cfg
		var gt *synth.OrientedTruth
		var err error
		ds, gt, err = synth.GenerateOriented(cfg)
		if err != nil {
			return err
		}
		describe = func(w io.Writer) {
			for i := range gt.Sizes {
				fmt.Fprintf(w, "cluster %c: %6d points, %d tight directions\n",
					'A'+i, gt.Sizes[i], len(gt.TightBases[i]))
			}
			fmt.Fprintf(w, "outliers:  %6d points\n", gt.Outliers)
		}
	} else {
		cfg := synth.Config{
			N: *n, Dims: *dims, K: *k,
			AvgDims:         *avgDims,
			FixedDims:       *fixedDims,
			OutlierFraction: *outliers,
			MinSizeFraction: *minShare,
			Seed:            *seed,
		}
		if *outliers == 0 {
			cfg.OutlierFraction = -1
		}
		if *dimCounts != "" {
			counts, err := parseCounts(*dimCounts)
			if err != nil {
				return err
			}
			cfg.DimCounts = counts
		}
		cfgEcho = cfg
		var gt *synth.GroundTruth
		var err error
		ds, gt, err = synth.Generate(cfg)
		if err != nil {
			return err
		}
		describe = func(w io.Writer) {
			for i, d := range gt.Dimensions {
				fmt.Fprintf(w, "cluster %c: %6d points, dims %v\n", 'A'+i, gt.Sizes[i], oneBased(d))
			}
			fmt.Fprintf(w, "outliers:  %6d points\n", gt.Outliers)
		}
	}

	if err := ds.SaveFile(*outPath); err != nil {
		return err
	}
	elapsed := time.Since(start)
	sess.Observe(obs.Event{
		Type: obs.EvRunEnd, Algorithm: "datagen", Seconds: elapsed.Seconds(),
	})
	fmt.Fprintf(out, "wrote %d points × %d dims to %s\n", ds.Len(), ds.Dims(), *outPath)
	describe(out)
	if obsFlags.Report != "" {
		rep := obs.RunReport{
			Algorithm: "datagen",
			Dataset: obs.DatasetInfo{
				Points: ds.Len(), Dims: ds.Dims(), Labeled: true, Source: *outPath,
			},
			Seed:         *seed,
			Config:       cfgEcho,
			TotalSeconds: elapsed.Seconds(),
		}
		if err := rep.WriteFile(obsFlags.Report); err != nil {
			return err
		}
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -dimcounts entry %q: %w", p, err)
		}
		counts = append(counts, v)
	}
	return counts, nil
}

func oneBased(dims []int) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		out[i] = d + 1
	}
	return out
}
