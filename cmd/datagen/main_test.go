package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proclus/internal/dataset"
)

func TestRunWritesBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.bin")
	var sb strings.Builder
	err := run([]string{"-n", "500", "-dims", "6", "-k", "2", "-fixeddims", "3", "-o", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 500 points × 6 dims") {
		t.Fatalf("output: %s", sb.String())
	}
	ds, err := dataset.LoadFile(out, false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 || ds.Dims() != 6 || !ds.Labeled() {
		t.Fatalf("dataset %d×%d labeled=%v", ds.Len(), ds.Dims(), ds.Labeled())
	}
}

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.csv")
	var sb strings.Builder
	err := run([]string{"-n", "200", "-dims", "4", "-k", "2", "-avgdims", "2", "-o", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadFile(out, true)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 200 {
		t.Fatalf("len %d", ds.Len())
	}
}

func TestRunDimCounts(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.bin")
	var sb strings.Builder
	err := run([]string{"-n", "300", "-dims", "8", "-k", "3", "-dimcounts", "2,3,4", "-o", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cluster C") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunOriented(t *testing.T) {
	out := filepath.Join(t.TempDir(), "o.bin")
	var sb strings.Builder
	err := run([]string{"-oriented", "-n", "300", "-dims", "6", "-k", "2", "-fixeddims", "2", "-o", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tight directions") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "100"}, &sb); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run([]string{"-n", "100", "-dimcounts", "2,x", "-o", "/tmp/never.bin"}, &sb); err == nil {
		t.Error("bad dimcounts accepted")
	}
	if err := run([]string{"-n", "0", "-o", filepath.Join(t.TempDir(), "x.bin")}, &sb); err == nil {
		t.Error("invalid generator config accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicFiles(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	var sb strings.Builder
	if err := run([]string{"-n", "300", "-dims", "5", "-k", "2", "-fixeddims", "2", "-seed", "9", "-o", a}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "300", "-dims", "5", "-k", "2", "-fixeddims", "2", "-seed", "9", "-o", b}, &sb); err != nil {
		t.Fatal(err)
	}
	da, err := dataset.LoadFile(a, false)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dataset.LoadFile(b, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < da.Len(); i++ {
		pa, pb := da.Point(i), db.Point(i)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("same seed produced different files at point %d", i)
			}
		}
	}
}

func TestRunReportAndTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.bin")
	report := filepath.Join(dir, "gen.json")
	trace := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	err := run([]string{"-n", "300", "-dims", "5", "-k", "2", "-fixeddims", "2",
		"-o", out, "-report", report, "-trace", trace}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithm string `json:"algorithm"`
		Dataset   struct {
			Points int    `json:"points"`
			Source string `json:"source"`
		} `json:"dataset"`
		TotalSeconds float64 `json:"total_seconds"`
	}
	if err := json.Unmarshal(rep, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if doc.Algorithm != "datagen" || doc.Dataset.Points != 300 || doc.Dataset.Source != out {
		t.Errorf("report fields: %+v", doc)
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"run_start"`) || !strings.Contains(string(tr), `"run_end"`) {
		t.Errorf("trace missing run events:\n%s", tr)
	}
}
