// Ablation benchmarks for the design choices DESIGN.md calls out:
// greedy vs random initialization, restart count, Manhattan segmental vs
// plain Manhattan assignment, the refinement phase, and serial vs
// parallel assignment. Each reports both time and — where meaningful —
// recovered quality via custom metrics (exact dimension matches,
// purity×1000) so the quality impact of each choice is visible next to
// its cost.
package proclus_test

import (
	"fmt"
	"testing"

	"proclus"
)

// ablationWorkload is a Case-2-style input (varying cluster
// dimensionality), the setting where initialization and restarts matter
// most.
func ablationWorkload(b *testing.B) (*proclus.Dataset, *proclus.GroundTruth) {
	b.Helper()
	ds, gt, err := proclus.Generate(proclus.GeneratorConfig{
		N: 8000, Dims: 20, K: 5, DimCounts: []int{2, 2, 3, 6, 7},
		MinSizeFraction: 0.1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds, gt
}

func scoreRun(b *testing.B, ds *proclus.Dataset, gt *proclus.GroundTruth, res *proclus.Result) (exact int, purity float64) {
	b.Helper()
	cm, err := proclus.NewConfusion(ds.Labels(), res.Assignments, len(res.Clusters), len(gt.Sizes))
	if err != nil {
		b.Fatal(err)
	}
	match := cm.Match()
	for i, cl := range res.Clusters {
		if match[i] >= 0 && proclus.MatchDimensions(cl.Dimensions, gt.Dimensions[match[i]]).Exact {
			exact++
		}
	}
	return exact, cm.Purity()
}

func benchConfigQuality(b *testing.B, cfg proclus.Config) {
	ds, gt := ablationWorkload(b)
	var exactSum int
	var puritySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res, err := proclus.Run(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		exact, purity := scoreRun(b, ds, gt, res)
		exactSum += exact
		puritySum += purity
	}
	b.ReportMetric(float64(exactSum)/float64(b.N), "exactdims/5")
	b.ReportMetric(1000*puritySum/float64(b.N), "purity*1e3")
}

// BenchmarkAblationInit compares the paper's greedy farthest-first
// initialization against uniform random candidate selection.
func BenchmarkAblationInit(b *testing.B) {
	b.Run("greedy", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4, InitMethod: proclus.InitGreedy})
	})
	b.Run("random", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4, InitMethod: proclus.InitRandom})
	})
}

// BenchmarkAblationRestarts compares a single hill climb against the
// default multi-restart search.
func BenchmarkAblationRestarts(b *testing.B) {
	for _, restarts := range []int{1, 5} {
		b.Run(fmt.Sprintf("restarts=%d", restarts), func(b *testing.B) {
			benchConfigQuality(b, proclus.Config{K: 5, L: 4, Restarts: restarts})
		})
	}
}

// BenchmarkAblationMetric compares Manhattan segmental assignment (the
// paper's normalized metric) against unnormalized Manhattan. The
// workload has clusters with 2–7 dimensions, exactly the case §1.2
// argues normalization is for.
func BenchmarkAblationMetric(b *testing.B) {
	b.Run("segmental", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4, AssignMetric: proclus.MetricSegmental})
	})
	b.Run("manhattan", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4, AssignMetric: proclus.MetricManhattan})
	})
}

// BenchmarkAblationRefinement measures the cost and quality effect of
// the §2.3 refinement phase.
func BenchmarkAblationRefinement(b *testing.B) {
	b.Run("with", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4})
	})
	b.Run("without", func(b *testing.B) {
		benchConfigQuality(b, proclus.Config{K: 5, L: 4, SkipRefinement: true})
	})
}

// BenchmarkOrientedProclusVsOrclus compares axis-parallel PROCLUS with
// the generalized ORCLUS extension on clusters correlated along
// arbitrary directions — the future-work scenario of the paper's
// conclusions. The ari*1e3 metric shows the recovery gap.
func BenchmarkOrientedProclusVsOrclus(b *testing.B) {
	ds, _, err := proclus.GenerateOriented(proclus.OrientedConfig{
		N: 3000, Dims: 10, K: 3, L: 2, OutlierFraction: -1, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("proclus", func(b *testing.B) {
		var ariSum float64
		for i := 0; i < b.N; i++ {
			res, err := proclus.Run(ds, proclus.Config{K: 3, L: 2, Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			ari, err := proclus.AdjustedRandIndex(ds.Labels(), res.Assignments)
			if err != nil {
				b.Fatal(err)
			}
			ariSum += ari
		}
		b.ReportMetric(1000*ariSum/float64(b.N), "ari*1e3")
	})
	b.Run("orclus", func(b *testing.B) {
		var ariSum float64
		for i := 0; i < b.N; i++ {
			res, err := proclus.RunORCLUS(ds, proclus.ORCLUSConfig{K: 3, L: 2, Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			ari, err := proclus.AdjustedRandIndex(ds.Labels(), res.Assignments)
			if err != nil {
				b.Fatal(err)
			}
			ariSum += ari
		}
		b.ReportMetric(1000*ariSum/float64(b.N), "ari*1e3")
	})
}

// BenchmarkAblationWorkers measures assignment-phase parallelism. The
// output is identical across worker counts; only wall-clock changes.
func BenchmarkAblationWorkers(b *testing.B) {
	ds, _, err := proclus.Generate(proclus.GeneratorConfig{
		N: 30000, Dims: 20, K: 5, FixedDims: 5, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := proclus.Run(ds, proclus.Config{K: 5, L: 5, Seed: 9, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
