package proclus_test

import (
	"fmt"
	"log"

	"proclus"
	"proclus/internal/randx"
)

// twoSubspaceClusters builds a small deterministic dataset with two
// projected clusters: dims {0,1} around (10,10) and dims {2,3} around
// (90,90), plus uniform noise on the remaining coordinates.
func twoSubspaceClusters() *proclus.Dataset {
	r := randx.New(7)
	ds := proclus.NewDataset(4)
	for i := 0; i < 200; i++ {
		ds.AppendLabeled([]float64{
			r.Normal(10, 1), r.Normal(10, 1), r.Uniform(0, 100), r.Uniform(0, 100),
		}, 0)
		ds.AppendLabeled([]float64{
			r.Uniform(0, 100), r.Uniform(0, 100), r.Normal(90, 1), r.Normal(90, 1),
		}, 1)
	}
	return ds
}

func ExampleRun() {
	ds := twoSubspaceClusters()
	res, err := proclus.Run(ds, proclus.Config{K: 2, L: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for i, cl := range res.Clusters {
		fmt.Printf("cluster %d: dims %v\n", i+1, cl.Dimensions)
	}
	// Output:
	// cluster 1: dims [0 1]
	// cluster 2: dims [2 3]
}

func ExampleGenerate() {
	ds, gt, err := proclus.Generate(proclus.GeneratorConfig{
		N: 1000, Dims: 10, K: 2, FixedDims: 3, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("points:", ds.Len())
	fmt.Println("clusters:", len(gt.Sizes))
	fmt.Println("dims per cluster:", len(gt.Dimensions[0]), len(gt.Dimensions[1]))
	// Output:
	// points: 1000
	// clusters: 2
	// dims per cluster: 3 3
}

func ExampleSweepL() {
	ds := twoSubspaceClusters()
	points, err := proclus.SweepL(ds, proclus.Config{K: 2, Seed: 1}, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	l, err := proclus.SuggestL(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suggested l:", l)
	// Output:
	// suggested l: 2
}

func ExampleRunORCLUS() {
	ds, _, err := proclus.GenerateOriented(proclus.OrientedConfig{
		N: 1500, Dims: 8, K: 2, L: 2, OutlierFraction: -1, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := proclus.RunORCLUS(ds, proclus.ORCLUSConfig{K: 2, L: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ari, err := proclus.AdjustedRandIndex(ds.Labels(), res.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d, each with a %d-vector basis, ARI %.1f\n",
		len(res.Clusters), len(res.Clusters[0].Basis), ari)
	// Output:
	// clusters: 2, each with a 2-vector basis, ARI 1.0
}

func ExampleDescribeCliqueCluster() {
	ds := twoSubspaceClusters()
	res, err := proclus.RunCLIQUE(ds, proclus.CliqueConfig{Xi: 10, Tau: 0.1, FixedDims: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, cl := range res.Clusters {
		for _, region := range proclus.DescribeCliqueCluster(cl) {
			fmt.Println(region)
		}
	}
	// The Gaussian tails spill into neighbouring grid cells, so the
	// first cluster needs two overlapping rectangles.
	// Output:
	// 0≤d0<2 ∧ 0≤d1<1
	// 0≤d0<1 ∧ 0≤d1<2
	// 8≤d2<10 ∧ 9≤d3<10
}

func ExampleMatchDimensions() {
	m := proclus.MatchDimensions([]int{0, 3, 5}, []int{0, 3, 7})
	fmt.Printf("precision %.2f recall %.2f exact %v\n", m.Precision, m.Recall, m.Exact)
	// Output:
	// precision 0.67 recall 0.67 exact false
}

func ExampleNewConfusion() {
	labels := []int{0, 0, 1, 1, -1}
	assignments := []int{1, 1, 0, 0, -1}
	cm, err := proclus.NewConfusion(labels, assignments, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("purity %.2f\n", cm.Purity())
	// Output:
	// purity 1.00
}
